"""A thread-safe LRU + TTL result cache shared across sessions.

Blaeu's interactivity comes from not recomputing: once one user's zoom
has paid for a CLARA/PAM run, every other session that navigates to the
same (table content, configuration, action path) triple should get the
finished map back in microseconds.  Keys are built by
:func:`repro.core.mapping.map_cache_key` from the table's content
fingerprint, the config digest and the canonical action path — never
from session ids — which is what makes the cache safely *shared*.

Eviction is least-recently-used with an optional time-to-live; both are
enforced on every access, and an injectable clock keeps the TTL logic
deterministically testable.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

__all__ = ["CacheStats", "LRUCache"]


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A bounded mapping with LRU eviction and optional per-entry TTL.

    Parameters
    ----------
    max_size:
        Maximum number of entries; inserting beyond it evicts the least
        recently used entry.
    ttl:
        Seconds an entry stays valid after insertion; ``None`` disables
        expiry.  Expired entries count as misses and are dropped lazily
        on access (plus eagerly by :meth:`purge_expired`).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        max_size: int = 256,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self._max_size = max_size
        self._ttl = ttl
        self._clock = clock
        self._entries: OrderedDict[Hashable, tuple[object, float]] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    # ------------------------------------------------------------------
    # Mapping operations
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> object | None:
        """The cached value, or ``None`` on miss/expiry (moves to MRU)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, stored_at = entry
            if self._ttl is not None and self._clock() - stored_at > self._ttl:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU one if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, self._clock())
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def purge_expired(self) -> int:
        """Eagerly drop expired entries; returns how many were removed."""
        if self._ttl is None:
            return 0
        with self._lock:
            now = self._clock()
            stale = [
                key
                for key, (_, stored_at) in self._entries.items()
                if now - stored_at > self._ttl
            ]
            for key in stale:
                del self._entries[key]
            self._expirations += len(stale)
            return len(stale)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            if self._ttl is not None and self._clock() - entry[1] > self._ttl:
                return False
            return True

    @property
    def max_size(self) -> int:
        """The eviction bound."""
        return self._max_size

    @property
    def ttl(self) -> float | None:
        """The per-entry time-to-live in seconds (``None``: no expiry)."""
        return self._ttl

    def stats(self) -> CacheStats:
        """A consistent snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._entries),
                max_size=self._max_size,
            )

"""A thread-safe LRU + TTL result cache shared across sessions.

Blaeu's interactivity comes from not recomputing: once one user's zoom
has paid for a CLARA/PAM run, every other session that navigates to the
same (table content, configuration, action path) triple should get the
finished map back in microseconds.  Keys are built by
:func:`repro.core.mapping.map_cache_key` from the table's content
fingerprint, the config digest and the canonical action path — never
from session ids — which is what makes the cache safely *shared*.

Eviction is least-recently-used with an optional time-to-live; both are
enforced on every access, and an injectable clock keeps the TTL logic
deterministically testable.

:class:`TieredCache` stacks this in-memory hot tier (L1) over the
disk-backed :class:`~repro.store.artifacts.ArtifactCache` (L2): reads
fall through to disk and *promote* back into memory; writes land in
memory always and on disk when the value is codec-serializable.  That
is how multiple worker processes share warm artifacts, and how a
restarted worker serves its first request warm.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

from repro.obs.metrics import get_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.artifacts import ArtifactCache

__all__ = ["CacheStats", "LRUCache", "TieredCache", "TieredCacheStats"]


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A bounded mapping with LRU eviction and optional per-entry TTL.

    Parameters
    ----------
    max_size:
        Maximum number of entries; inserting beyond it evicts the least
        recently used entry.
    ttl:
        Seconds an entry stays valid after insertion; ``None`` disables
        expiry.  Expired entries count as misses and are dropped lazily
        on access (plus eagerly by :meth:`purge_expired`).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        max_size: int = 256,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self._max_size = max_size
        self._ttl = ttl
        self._clock = clock
        self._entries: OrderedDict[Hashable, tuple[object, float]] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    # ------------------------------------------------------------------
    # Mapping operations
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> object | None:
        """The cached value, or ``None`` on miss/expiry (moves to MRU)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, stored_at = entry
            if self._ttl is not None and self._clock() - stored_at > self._ttl:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU one if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, self._clock())
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def purge_expired(self) -> int:
        """Eagerly drop expired entries; returns how many were removed."""
        if self._ttl is None:
            return 0
        with self._lock:
            now = self._clock()
            stale = [
                key
                for key, (_, stored_at) in self._entries.items()
                if now - stored_at > self._ttl
            ]
            for key in stale:
                del self._entries[key]
            self._expirations += len(stale)
            return len(stale)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            if self._ttl is not None and self._clock() - entry[1] > self._ttl:
                return False
            return True

    @property
    def max_size(self) -> int:
        """The eviction bound."""
        return self._max_size

    @property
    def ttl(self) -> float | None:
        """The per-entry time-to-live in seconds (``None``: no expiry)."""
        return self._ttl

    def stats(self) -> CacheStats:
        """A consistent snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._entries),
                max_size=self._max_size,
            )


@dataclass(frozen=True)
class TieredCacheStats:
    """Per-tier effectiveness of one :class:`TieredCache`."""

    memory: CacheStats
    memory_hits: int
    disk_hits: int
    misses: int
    promotions: int
    disk_skipped: int


class TieredCache:
    """An L1 (memory) / L2 (disk) cache behind the ``get``/``put`` surface.

    Parameters
    ----------
    memory:
        The in-memory hot tier (an :class:`LRUCache`).
    disk:
        The shared on-disk tier (an
        :class:`~repro.store.artifacts.ArtifactCache`), or ``None`` to
        degrade to memory-only (the single-process default).

    Reads check memory first; a disk hit is *promoted* into memory so
    the per-key decode cost is paid once per process.  Writes always
    land in memory; disk persistence is best-effort — values outside
    the codec's type registry simply stay memory-only, which keeps the
    tier transparent to the pipeline.  Counters additionally feed the
    process-global metrics registry (``blaeu_artifact_cache_*``), so
    ``/metrics`` shows the disk tier's effectiveness per worker.
    """

    def __init__(self, memory: LRUCache, disk: "ArtifactCache | None" = None) -> None:
        self._memory = memory
        self._disk = disk
        self._lock = threading.Lock()
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._promotions = 0
        self._disk_skipped = 0

    @property
    def memory(self) -> LRUCache:
        """The L1 tier."""
        return self._memory

    @property
    def disk(self) -> "ArtifactCache | None":
        """The L2 tier (``None`` when running memory-only)."""
        return self._disk

    def get(self, key: Hashable) -> object | None:
        """L1 lookup, falling through to L2 with promotion.

        Every lookup attributes its outcome to the tier that answered:
        ``blaeu_cache_hits_total{tier="l1"|"l2"}`` (and the matching
        ``misses`` series) make prefetch effectiveness visible per
        layer, and ``blaeu_cache_promotions_total`` counts L2 → L1
        promotions.
        """
        metrics = get_metrics()
        value = self._memory.get(key)
        if value is not None:
            with self._lock:
                self._memory_hits += 1
            metrics.increment_labeled(
                "blaeu_cache_hits_total", {"tier": "l1"}
            )
            return value
        metrics.increment_labeled("blaeu_cache_misses_total", {"tier": "l1"})
        if self._disk is not None:
            value = self._disk.get(key)
            if value is not None:
                self._memory.put(key, value)
                with self._lock:
                    self._disk_hits += 1
                    self._promotions += 1
                metrics.increment_labeled(
                    "blaeu_cache_hits_total", {"tier": "l2"}
                )
                metrics.increment("blaeu_cache_promotions_total")
                metrics.increment("blaeu_artifact_cache_hits_total")
                return value
            metrics.increment_labeled(
                "blaeu_cache_misses_total", {"tier": "l2"}
            )
            metrics.increment("blaeu_artifact_cache_misses_total")
        with self._lock:
            self._misses += 1
        return None

    def put(self, key: Hashable, value: object) -> None:
        """Insert into memory, and onto disk when serializable."""
        self._memory.put(key, value)
        if self._disk is None:
            return
        if self._disk.put(key, value):
            get_metrics().increment("blaeu_artifact_cache_writes_total")
        else:
            with self._lock:
                self._disk_skipped += 1
            get_metrics().increment("blaeu_artifact_cache_write_skips_total")

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry from both tiers."""
        present = self._memory.invalidate(key)
        if self._disk is not None:
            self._disk.invalidate(key)
        return present

    def clear(self) -> None:
        """Drop every entry from both tiers."""
        self._memory.clear()
        if self._disk is not None:
            self._disk.clear()

    def stats(self) -> CacheStats:
        """The L1 snapshot (duck-compatible with :class:`LRUCache`).

        The serving layer's health endpoint reads ``stats()`` off
        whatever cache the engine carries; keeping the L1 shape here
        means tiering never changes that surface.  Tier-aware callers
        use :meth:`tier_stats`.
        """
        return self._memory.stats()

    def tier_stats(self) -> TieredCacheStats:
        """Per-tier counters (memory/disk hits, promotions, skips)."""
        with self._lock:
            return TieredCacheStats(
                memory=self._memory.stats(),
                memory_hits=self._memory_hits,
                disk_hits=self._disk_hits,
                misses=self._misses,
                promotions=self._promotions,
                disk_skipped=self._disk_skipped,
            )

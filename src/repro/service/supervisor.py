"""A pre-fork supervisor: N worker processes over one artifact cache.

``blaeu serve --workers N`` boots this tier instead of a single
:class:`~repro.service.app.BlaeuService`.  The supervisor owns the
public socket and forwards each request to one of N worker processes,
each a full single-process service on a loopback port.  What makes the
fleet act like one warm service is the *shared on-disk artifact cache*
(:mod:`repro.store.artifacts`): every worker mounts the same cache
directory as its L2 tier, so a map one worker pays for is a disk hit
for every other worker — and for the worker's own replacement after a
restart.

Request placement is consistent-hash routing
(:mod:`repro.service.routing`) keyed on content identity:

* ``/v1/tables/{ref}/…`` routes on the table's *fingerprint* (names
  are resolved through the catalog), so all work on the same data
  lands on the worker whose in-memory L1 already holds it;
* session commands route on the session id — sessions are sticky to a
  *slot*, and a restarted worker reoccupies its slot;
* ``/metrics`` and ``/v1/traces`` fan out to every worker and answer
  the merged view (counters summed, traces interleaved), each series
  also broken out per worker slot where it matters
  (``blaeu_worker_up``).

Workers announce their bound port through a *port file* (they bind
port 0), are monitored, and are respawned into their slot on death;
``POST /v1/workers/{slot}/restart`` triggers a graceful rolling
restart whose replacement serves warm from disk.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import urlencode

from repro.resilience.retry import RetryBudget, jittered_backoff
from repro.service.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    json_response,
    redirect_response,
    text_response,
)
from repro.service.routing import HashRing

__all__ = ["Supervisor", "SupervisorError", "merge_metrics"]

#: Headers the proxy strips rather than forwards (hop-by-hop framing).
_HOP_HEADERS = ("connection", "content-length", "host", "keep-alive")


class SupervisorError(RuntimeError):
    """A worker failed to boot or died unrecoverably."""


@dataclass
class WorkerProcess:
    """One supervised worker slot."""

    slot: int
    process: subprocess.Popen | None = None
    port: int | None = None
    generation: int = 0
    restarts: int = 0
    port_file: Path = field(default=Path("."))
    #: Set while the slot is being drained for a graceful restart; the
    #: proxy refuses to route to a draining slot (failover handles it).
    draining: bool = False
    #: Requests currently proxied to this worker.
    in_flight: int = 0
    #: Consecutive failed health probes (reset on success).
    health_fails: int = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


def merge_metrics(bodies: list[str], extra: list[str] | None = None) -> str:
    """Sum per-worker Prometheus expositions into one body.

    Series with identical names and labels are summed — correct for
    counters, histogram buckets/sums/counts, and the gauge-as-total
    style this codebase uses.  ``# TYPE`` lines are kept (first wins)
    and re-emitted ahead of their series, so the merged body is valid
    exposition text.
    """
    types: dict[str, str] = {}
    series: dict[str, float] = {}
    for body in bodies:
        for line in body.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) >= 4 and parts[1] == "TYPE":
                    types.setdefault(parts[2], line)
                continue
            key, _, value = line.rpartition(" ")
            if not key:
                continue
            try:
                number = float(value)
            except ValueError:
                continue
            series[key] = series.get(key, 0.0) + number

    def metric_name(key: str) -> str:
        name = key.split("{", 1)[0].strip()
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)]
        return name

    grouped: dict[str, list[str]] = {}
    for key, value in series.items():
        text = f"{value:g}"
        grouped.setdefault(metric_name(key), []).append(f"{key} {text}")
    lines: list[str] = []
    emitted: set[str] = set()
    for name, type_line in types.items():
        if name not in grouped:
            continue
        lines.append(type_line)
        lines.extend(grouped[name])
        emitted.add(name)
    for name, entries in grouped.items():
        if name not in emitted:
            lines.extend(entries)
    if extra:
        lines.extend(extra)
    return "\n".join(lines) + "\n"


class Supervisor:
    """The multi-worker front: spawn, route, aggregate, respawn.

    Parameters
    ----------
    worker_argv:
        The ``blaeu serve`` argument vector each worker runs with
        (data sources and per-worker flags) — *without* ``--port`` /
        ``--port-file``, which the supervisor appends per slot.
    n_workers:
        Worker process count (slots ``0 … n-1``).
    host / port:
        The public bind address (workers bind loopback port 0).
    state_dir:
        Where port files live; a temp directory by default.
    spawn_timeout:
        Seconds to wait for a worker to announce its port.
    drain_timeout:
        Seconds a draining slot may finish in-flight requests before a
        graceful restart terminates it.
    health_interval / health_timeout / health_fail_threshold:
        Active health checks: every ``health_interval`` seconds each
        worker gets a ``/healthz`` probe bounded by ``health_timeout``;
        ``health_fail_threshold`` consecutive failures mark a
        hung-but-alive worker (process up, socket wedged) for a
        hard respawn.
    retry_ratio:
        Retry-budget deposit per first attempt (see
        :class:`~repro.resilience.retry.RetryBudget`) — retries are
        capped at roughly this fraction of live traffic.
    """

    def __init__(
        self,
        worker_argv: list[str],
        n_workers: int,
        host: str = "127.0.0.1",
        port: int = 8787,
        read_timeout: float = 30.0,
        state_dir: str | Path | None = None,
        spawn_timeout: float = 60.0,
        drain_timeout: float = 5.0,
        health_interval: float = 1.0,
        health_timeout: float = 2.0,
        health_fail_threshold: int = 2,
        retry_ratio: float = 0.2,
    ) -> None:
        if n_workers < 2:
            raise ValueError("a supervisor needs at least 2 workers")
        self._worker_argv = list(worker_argv)
        self._n_workers = n_workers
        self._state_dir = (
            Path(state_dir)
            if state_dir is not None
            else Path(tempfile.mkdtemp(prefix="blaeu-supervisor-"))
        )
        self._state_dir.mkdir(parents=True, exist_ok=True)
        self._spawn_timeout = spawn_timeout
        self._workers = [
            WorkerProcess(
                slot=slot, port_file=self._state_dir / f"worker-{slot}.port"
            )
            for slot in range(n_workers)
        ]
        self._ring = HashRing(range(n_workers))
        self._fingerprints: dict[str, str] = {}  # name -> fingerprint
        self._http = HttpServer(
            self._route, host=host, port=port, read_timeout=read_timeout
        )
        self._monitor_task: asyncio.Task | None = None
        self._stopping = False
        self._started_at: float | None = None
        self._drain_timeout = drain_timeout
        self._health_interval = health_interval
        self._health_timeout = health_timeout
        self._health_fail_threshold = health_fail_threshold
        self._retry_budget = RetryBudget(ratio=retry_ratio, burst=10.0)
        # Seeded jitter: retry timing is reproducible run over run (the
        # chaos bench depends on it), while still decorrelating retries
        # within a run.
        self._retry_rng = random.Random(0xB1AE)
        self._retries = 0
        self._retry_successes = 0
        self._failovers = 0
        self._retry_exhausted = 0
        self._unhealthy_restarts = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        """The public bind host."""
        return self._http.host

    @property
    def port(self) -> int:
        """The public bound port (after :meth:`start`)."""
        return self._http.port

    @property
    def workers(self) -> list[WorkerProcess]:
        """The worker slots (live view)."""
        return self._workers

    @property
    def ring(self) -> HashRing:
        """The routing ring (slots are stable across restarts)."""
        return self._ring

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker, wait for their ports, open the front."""
        for worker in self._workers:
            self._spawn(worker)
        await asyncio.gather(
            *(self._await_port(worker) for worker in self._workers)
        )
        await self._http.start()
        self._started_at = time.monotonic()
        self._monitor_task = asyncio.create_task(self._monitor())

    async def stop(self) -> None:
        """Stop the front, then terminate the fleet."""
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._monitor_task
            self._monitor_task = None
        await self._http.stop()
        for worker in self._workers:
            self._terminate(worker)

    async def serve_forever(self) -> None:
        """Serve until cancelled."""
        with contextlib.suppress(asyncio.CancelledError):
            await self._http.serve_forever()

    def run(self) -> None:
        """Blocking entry point with signal-triggered shutdown."""
        asyncio.run(self._run())

    async def _run(self) -> None:
        await self.start()
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # pragma: no cover
                loop.add_signal_handler(signum, stop_requested.set)
        ports = [worker.port for worker in self._workers]
        print(
            f"blaeu supervisor listening on http://{self.host}:{self.port} "
            f"({self._n_workers} workers on ports {ports})"
        )
        serve_task = asyncio.create_task(self.serve_forever())
        await stop_requested.wait()
        await self.stop()
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task

    async def restart(self, slot: int) -> None:
        """Gracefully restart one worker (warm restart via the disk tier).

        The slot is first marked *draining*: the proxy stops routing to
        it (idempotent requests fail over on the ring) while in-flight
        requests get up to ``drain_timeout`` seconds to finish.  Only
        then does the old process get SIGTERM — under which the worker
        itself drains — and the replacement reoccupies the same slot,
        so the ring still sends it the same tables, whose artifacts it
        now finds on disk.
        """
        worker = self._worker(slot)
        worker.draining = True
        try:
            give_up = time.monotonic() + self._drain_timeout
            while worker.in_flight > 0 and time.monotonic() < give_up:
                await asyncio.sleep(0.05)
            self._terminate(worker)
            worker.restarts += 1
            self._spawn(worker)
            await self._await_port(worker)
        finally:
            worker.draining = False

    # ------------------------------------------------------------------
    # Worker management
    # ------------------------------------------------------------------

    def _worker(self, slot: int) -> WorkerProcess:
        if not 0 <= slot < self._n_workers:
            raise HttpError(404, f"no worker slot {slot}")
        return self._workers[slot]

    def _spawn(self, worker: WorkerProcess) -> None:
        worker.generation += 1
        with contextlib.suppress(OSError):
            worker.port_file.unlink()
        worker.port = None
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--port-file",
            str(worker.port_file),
            *self._worker_argv,
        ]
        env = dict(os.environ)
        env["BLAEU_WORKER_SLOT"] = str(worker.slot)
        worker.process = subprocess.Popen(  # noqa: S603 - our own argv
            argv,
            stdout=subprocess.DEVNULL,
            stderr=None,  # workers share the supervisor's stderr
            env=env,
            cwd=os.getcwd(),
        )

    async def _await_port(self, worker: WorkerProcess) -> None:
        deadline = time.monotonic() + self._spawn_timeout
        while time.monotonic() < deadline:
            if worker.process is not None and worker.process.poll() is not None:
                raise SupervisorError(
                    f"worker {worker.slot} exited with "
                    f"{worker.process.returncode} before announcing a port"
                )
            try:
                text = worker.port_file.read_text(encoding="utf-8").strip()
            except OSError:
                text = ""
            if text:
                worker.port = int(text)
                return
            await asyncio.sleep(0.05)
        raise SupervisorError(
            f"worker {worker.slot} did not announce a port within "
            f"{self._spawn_timeout:.0f}s"
        )

    def _terminate(self, worker: WorkerProcess) -> None:
        process = worker.process
        if process is None:
            return
        if process.poll() is None:
            with contextlib.suppress(OSError):
                process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                process.kill()
                process.wait(timeout=10)
        worker.process = None
        worker.port = None

    def _kill(self, worker: WorkerProcess) -> None:
        """Hard-stop a hung worker (SIGTERM would never be serviced)."""
        process = worker.process
        if process is not None and process.poll() is None:
            with contextlib.suppress(OSError):
                process.kill()
            with contextlib.suppress(subprocess.TimeoutExpired):
                process.wait(timeout=10)
        worker.process = None
        worker.port = None

    async def _monitor(self) -> None:
        """Respawn dead workers into their slots (ring stays stable).

        Besides watching for process exit, the monitor actively probes
        each worker's ``/healthz`` every ``health_interval`` seconds: a
        worker whose process is up but whose socket is wedged (hung
        event loop, stopped process) fails probes, and after
        ``health_fail_threshold`` consecutive failures is killed and
        respawned — liveness is "answers requests", not "has a pid".
        """
        last_probe = time.monotonic()
        while True:
            await asyncio.sleep(0.25)
            dead = [
                worker
                for worker in self._workers
                if not (
                    self._stopping
                    or worker.draining
                    or worker.alive
                    or worker.process is None
                )
            ]
            # Spawn every dead slot before awaiting any port: when a
            # fault takes several workers at once, serial respawns
            # would leave the later slots down for the sum of all the
            # earlier boots.
            for worker in dead:
                worker.restarts += 1
                self._spawn(worker)

            async def _absorb(worker: WorkerProcess) -> None:
                with contextlib.suppress(SupervisorError):
                    await self._await_port(worker)

            if dead:
                await asyncio.gather(*(_absorb(worker) for worker in dead))
            now = time.monotonic()
            if now - last_probe >= self._health_interval:
                last_probe = now
                await self._probe_health()

    async def _probe_health(self) -> None:
        for worker in self._workers:
            if (
                self._stopping
                or worker.draining
                or not worker.alive
                or worker.port is None
            ):
                continue
            try:
                response = await asyncio.wait_for(
                    self._request_worker(worker, "GET", "/healthz"),
                    timeout=self._health_timeout,
                )
                ok = response.status == 200
            except (
                asyncio.TimeoutError,
                ConnectionError,
                asyncio.IncompleteReadError,
                OSError,
            ):
                ok = False
            if ok:
                worker.health_fails = 0
                continue
            worker.health_fails += 1
            if worker.health_fails < self._health_fail_threshold:
                continue
            self._unhealthy_restarts += 1
            worker.health_fails = 0
            worker.restarts += 1
            self._kill(worker)
            self._spawn(worker)
            with contextlib.suppress(SupervisorError):
                await self._await_port(worker)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(self, request: HttpRequest) -> HttpResponse:
        try:
            return await self._dispatch(request)
        except HttpError as error:
            return json_response(
                {"ok": False, "error": error.message, "code": error.code},
                error.status,
            )
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as error:
            # The routed worker died mid-request; the monitor will
            # respawn it.  Tell the client to retry rather than hang.
            return json_response(
                {
                    "ok": False,
                    "error": f"worker unavailable: {error}",
                    "code": "unavailable",
                },
                503,
            )

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            return await self._handle_healthz()
        if path == "/metrics":
            return await self._handle_metrics()
        if path in ("/trace", "/v1/traces"):
            if path == "/trace":
                return redirect_response("/v1/traces")
            return await self._handle_traces(request)
        if path == "/v1/workers":
            return self._handle_workers()
        if path.startswith("/v1/workers/") and path.endswith("/restart"):
            if request.method != "POST":
                raise HttpError(405, "use POST to restart a worker")
            word = path[len("/v1/workers/") : -len("/restart")]
            try:
                slot = int(word)
            except ValueError:
                raise HttpError(404, f"no worker slot {word!r}") from None
            await self.restart(slot)
            worker = self._worker(slot)
            return json_response(
                {
                    "ok": True,
                    "slot": slot,
                    "port": worker.port,
                    "generation": worker.generation,
                    "restarts": worker.restarts,
                }
            )
        return await self._forward_resilient(
            self._slots_for(request, path), request
        )

    def _slot_for(self, request: HttpRequest, path: str) -> int:
        """The worker slot owning this request's content identity."""
        return self._slots_for(request, path)[0]

    def _slots_for(self, request: HttpRequest, path: str) -> list[int]:
        """Preference-ordered slots: the owner, then its ring successor
        (the failover target for idempotent requests)."""
        if path.startswith("/v1/tables/"):
            ref = path[len("/v1/tables/") :].split("/", 1)[0]
            return self._ring.owners(f"table:{self._fingerprint(ref)}", 2)
        body: dict[str, object] = {}
        if request.body:
            with contextlib.suppress(HttpError):
                body = request.json()
        session = body.get("session")
        if isinstance(session, str) and session:
            return self._ring.owners(f"session:{session}", 2)
        table = body.get("table")
        if isinstance(table, str) and table:
            return self._ring.owners(f"table:{self._fingerprint(table)}", 2)
        return self._ring.owners(f"path:{path}", 2)

    def _fingerprint(self, ref: str) -> str:
        """Resolve a table name to its content fingerprint (best effort).

        The catalog map is filled by :meth:`_handle_healthz` /
        :meth:`_refresh_catalog`; an unresolved name still routes
        deterministically on its own spelling.
        """
        return self._fingerprints.get(ref, ref)

    async def _refresh_catalog(self) -> None:
        """Re-learn name → fingerprint from any live worker."""
        for worker in self._workers:
            if worker.port is None:
                continue
            try:
                response = await self._request_worker(
                    worker, "GET", "/v1/tables"
                )
                payload = json.loads(response.body.decode("utf-8"))
            except (OSError, ValueError, asyncio.IncompleteReadError):
                continue
            records = payload.get("catalog", [])
            if isinstance(records, list):
                for record in records:
                    if isinstance(record, dict):
                        name = str(record.get("name", ""))
                        fingerprint = str(record.get("fingerprint", ""))
                        if name and fingerprint:
                            self._fingerprints[name] = fingerprint
                return

    # ------------------------------------------------------------------
    # Proxying
    # ------------------------------------------------------------------

    async def _forward_resilient(
        self, slots: list[int], request: HttpRequest
    ) -> HttpResponse:
        """Forward with retry + failover for idempotent requests.

        The owner slot is tried first.  When the exchange fails at the
        transport level (worker died mid-request, connection refused),
        an idempotent request — GET/HEAD; these either hit caches or
        recompute deterministically — is retried once against the owner
        (it may have respawned) with jittered backoff, then failed over
        to the ring's next slot.  Non-idempotent requests (sticky
        session commands) are never replayed; the client gets a 503
        with ``Retry-After``.

        A retry *budget* (token bucket fed by first attempts) caps
        retry volume at a fraction of live traffic so a fleet-wide
        outage degrades to fast 503s instead of a retry storm.
        """
        deadline_header = request.headers.get("x-blaeu-deadline")
        give_up: float | None = None
        if deadline_header is not None:
            with contextlib.suppress(ValueError):
                give_up = time.monotonic() + float(deadline_header)
        idempotent = request.method in ("GET", "HEAD")
        # Four attempts ride out a double failure (both candidate slots
        # lost mid-exchange in the same window): the later attempts land
        # on respawned processes.  Non-idempotent requests get exactly
        # one delivery.
        max_attempts = 4 if idempotent else 1
        self._retry_budget.record_request()
        last_error: Exception | None = None
        tried: list[int] = []
        for attempt in range(max_attempts):
            # Routability is re-evaluated per attempt: a slot that died
            # mid-loop is skipped, and a slot the monitor just respawned
            # becomes eligible again.  Known-dead slots never consume
            # the retry budget — only genuine mid-request failures do.
            # When every candidate is down at once, wait for the monitor
            # to respawn one (a worker boot, not an outage, is the
            # common cause) instead of failing fast against dead ports.
            await self._await_any_up(slots, give_up)
            slot = self._choose_slot(slots, tried)
            tried.append(slot)
            if attempt > 0:
                # A retry against a port nobody listens on costs the
                # fleet nothing, so connection-refused failures don't
                # charge the budget; only mid-exchange failures (the
                # worker took the request and died) do — those are the
                # ones a storm would amplify.
                charged = not isinstance(last_error, ConnectionRefusedError)
                if charged and not self._retry_budget.try_spend():
                    self._retry_exhausted += 1
                    break
                delay = jittered_backoff(
                    attempt - 1, base=0.05, rng=self._retry_rng
                )
                if give_up is not None and (
                    time.monotonic() + delay >= give_up
                ):
                    break
                await asyncio.sleep(delay)
                self._retries += 1
                if slot != slots[0]:
                    self._failovers += 1
            try:
                response = await self._forward(slot, request)
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                OSError,
            ) as error:
                if os.environ.get("BLAEU_PROXY_DEBUG"):
                    print(
                        f"proxy-debug t={time.monotonic():.3f} "
                        f"target={self._target(request)} attempt={attempt} "
                        f"slot={slot} tried={tried} err={error!r} workers="
                        f"{[(w.slot, w.port, w.alive) for w in self._workers]}",
                        file=sys.stderr,
                    )
                last_error = error
                continue
            if attempt > 0:
                self._retry_successes += 1
            return response
        if give_up is not None and time.monotonic() >= give_up:
            raise HttpError(
                504,
                f"deadline exhausted retrying a failed worker: {last_error}",
                "deadline_exceeded",
            )
        raise HttpError(
            503,
            f"worker unavailable: {last_error}",
            "unavailable",
            headers={"Retry-After": "1"},
        )

    def _routable(self, slot: int) -> bool:
        """Whether a slot is believed able to answer right now."""
        worker = self._workers[slot]
        return (
            not worker.draining and worker.port is not None and worker.alive
        )

    def _booting(self, slot: int) -> bool:
        """Whether a slot is alive but still announcing its port."""
        worker = self._workers[slot]
        return not worker.draining and worker.port is None and worker.alive

    def _choose_slot(self, preference: list[int], tried: list[int]) -> int:
        """The next slot to try: routable first, then booting, untried
        before retried.

        A booting slot (respawned process, port not yet announced)
        outranks a dead one — :meth:`_forward` waits out the boot, so
        the request lands slow instead of failing fast.  The raw
        preference order is the last resort when the whole candidate
        set is down.
        """
        routable = [slot for slot in preference if self._routable(slot)]
        booting = [slot for slot in preference if self._booting(slot)]
        pool = (routable + booting) or preference
        for slot in pool:
            if slot not in tried:
                return slot
        return pool[0]

    async def _await_any_up(
        self, preference: list[int], give_up: float | None
    ) -> None:
        """Wait until some candidate slot is routable or booting.

        Bounded by the request deadline and by ``spawn_timeout`` (the
        time a respawn is entitled to) — on expiry the caller proceeds
        and takes the connection error.
        """
        cap = time.monotonic() + self._spawn_timeout
        if give_up is not None:
            cap = min(cap, give_up)
        while time.monotonic() < cap:
            if any(
                self._routable(slot) or self._booting(slot)
                for slot in preference
            ):
                return
            await asyncio.sleep(0.05)

    async def _forward(
        self, slot: int, request: HttpRequest
    ) -> HttpResponse:
        if not self._fingerprints and request.path.startswith("/v1/tables/"):
            await self._refresh_catalog()
            slot = self._slot_for(request, request.path.rstrip("/") or "/")
        worker = self._worker(slot)
        if worker.draining:
            raise ConnectionError(f"worker {slot} is draining")
        if worker.port is None:
            try:
                await self._await_port(worker)
            except SupervisorError as error:
                raise ConnectionError(str(error)) from error
        worker.in_flight += 1
        try:
            response = await self._request_worker(
                worker,
                request.method,
                self._target(request),
                headers=request.headers,
                body=request.body,
            )
        finally:
            worker.in_flight -= 1
        response.headers["X-Blaeu-Worker"] = str(slot)
        return response

    @staticmethod
    def _target(request: HttpRequest) -> str:
        if not request.query:
            return request.path
        return request.path + "?" + urlencode(request.query, doseq=True)

    async def _request_worker(
        self,
        worker: WorkerProcess,
        method: str,
        target: str,
        headers: dict[str, str] | None = None,
        body: bytes = b"",
    ) -> HttpResponse:
        """One ``Connection: close`` HTTP exchange with a worker."""
        if worker.port is None:
            raise ConnectionError(f"worker {worker.slot} has no port")
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", worker.port
        )
        try:
            lines = [f"{method} {target} HTTP/1.1", "Host: 127.0.0.1"]
            for name, value in (headers or {}).items():
                if name.lower() not in _HOP_HEADERS:
                    lines.append(f"{name}: {value}")
            lines.append(f"Content-Length: {len(body)}")
            lines.append("Connection: close")
            writer.write(
                ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
            )
            await writer.drain()
            return await self._read_response(reader)
        finally:
            writer.close()
            with contextlib.suppress(
                ConnectionError, asyncio.IncompleteReadError, OSError
            ):
                await writer.wait_closed()

    @staticmethod
    async def _read_response(reader: asyncio.StreamReader) -> HttpResponse:
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"bad status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length")
        if length_text is not None:
            body = await reader.readexactly(int(length_text))
        else:  # pragma: no cover - workers always send Content-Length
            body = await reader.read()
        passthrough = {
            name: value
            for name, value in headers.items()
            if name in ("location", "x-blaeu-trace")
        }
        return HttpResponse(
            status=status,
            body=body,
            content_type=headers.get(
                "content-type", "application/json; charset=utf-8"
            ),
            headers=passthrough,
        )

    # ------------------------------------------------------------------
    # Aggregated endpoints
    # ------------------------------------------------------------------

    async def _fan_out(
        self, method: str, target: str
    ) -> list[tuple[WorkerProcess, HttpResponse | None]]:
        async def one(worker: WorkerProcess) -> HttpResponse | None:
            try:
                return await self._request_worker(worker, method, target)
            except (OSError, ConnectionError, asyncio.IncompleteReadError):
                return None

        responses = await asyncio.gather(
            *(one(worker) for worker in self._workers)
        )
        return list(zip(self._workers, responses))

    async def _handle_healthz(self) -> HttpResponse:
        await self._refresh_catalog()
        results = await self._fan_out("GET", "/healthz")
        workers = []
        tables = 0
        for worker, response in results:
            healthy = response is not None and response.status == 200
            entry: dict[str, object] = {
                "slot": worker.slot,
                "port": worker.port,
                "healthy": healthy,
                "generation": worker.generation,
                "restarts": worker.restarts,
            }
            if healthy:
                payload = json.loads(response.body.decode("utf-8"))
                entry["sessions"] = payload.get("sessions", 0)
                tables = max(tables, int(payload.get("tables", 0)))
            workers.append(entry)
        healthy_count = sum(1 for entry in workers if entry["healthy"])
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return json_response(
            {
                "ok": healthy_count == self._n_workers,
                "status": "healthy" if healthy_count else "down",
                "uptime_seconds": round(uptime, 3),
                "tables": tables,
                "workers": workers,
            },
            200 if healthy_count else 503,
        )

    async def _handle_metrics(self) -> HttpResponse:
        results = await self._fan_out("GET", "/metrics")
        bodies = [
            response.body.decode("utf-8")
            for _, response in results
            if response is not None and response.status == 200
        ]
        extra = ["# TYPE blaeu_worker_up gauge"]
        extra.extend(
            f'blaeu_worker_up{{slot="{worker.slot}"}} '
            f"{1 if response is not None else 0}"
            for worker, response in results
        )
        extra.append("# TYPE blaeu_worker_restarts_total counter")
        extra.append(
            "blaeu_worker_restarts_total "
            f"{sum(worker.restarts for worker in self._workers)}"
        )
        extra.append("# TYPE blaeu_supervisor_workers gauge")
        extra.append(f"blaeu_supervisor_workers {self._n_workers}")
        for name, value in (
            ("blaeu_resilience_proxy_retries_total", self._retries),
            (
                "blaeu_resilience_proxy_retry_successes_total",
                self._retry_successes,
            ),
            ("blaeu_resilience_proxy_failovers_total", self._failovers),
            (
                "blaeu_resilience_proxy_retry_exhausted_total",
                self._retry_exhausted,
            ),
            (
                "blaeu_resilience_unhealthy_restarts_total",
                self._unhealthy_restarts,
            ),
        ):
            extra.append(f"# TYPE {name} counter")
            extra.append(f"{name} {value}")
        return text_response(merge_metrics(bodies, extra))

    async def _handle_traces(self, request: HttpRequest) -> HttpResponse:
        limit = 10
        values = request.query.get("limit")
        if values:
            try:
                limit = int(values[0])
            except ValueError:
                raise HttpError(
                    400, f"limit must be an integer, got {values[0]!r}"
                ) from None
        results = await self._fan_out("GET", f"/v1/traces?limit={limit}")
        traces: list[dict[str, object]] = []
        enabled = False
        for worker, response in results:
            if response is None or response.status != 200:
                continue
            payload = json.loads(response.body.decode("utf-8"))
            enabled = enabled or bool(payload.get("enabled", False))
            for trace in payload.get("traces", []):
                if isinstance(trace, dict):
                    trace["worker"] = worker.slot
                    traces.append(trace)
        return json_response(
            {"ok": True, "enabled": enabled, "traces": traces[:limit]}
        )

    def _handle_workers(self) -> HttpResponse:
        return json_response(
            {
                "ok": True,
                "workers": [
                    {
                        "slot": worker.slot,
                        "port": worker.port,
                        "alive": worker.alive,
                        "pid": (
                            worker.process.pid
                            if worker.process is not None
                            else None
                        ),
                        "generation": worker.generation,
                        "restarts": worker.restarts,
                        "draining": worker.draining,
                    }
                    for worker in self._workers
                ],
            }
        )

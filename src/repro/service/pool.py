"""A bounded worker pool that keeps slow work off the event loop.

Map construction (CLARA/PAM + CART) takes tens to hundreds of
milliseconds — far too long to run on the asyncio event loop, where it
would stall every connected client.  :class:`WorkerPool` runs such work
on a small thread pool with an explicit admission bound: when
``max_pending`` jobs are already in flight the pool *refuses* new work
(:class:`PoolSaturatedError`) instead of queueing unboundedly, which
the HTTP layer translates to ``503`` — load shedding, not latency
collapse.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.resilience.deadline import DeadlineExceeded, current_deadline

__all__ = ["PoolSaturatedError", "PoolStats", "WorkerPool"]

T = TypeVar("T")


class PoolSaturatedError(RuntimeError):
    """The pool is at its admission limit; shed the request."""


@dataclass(frozen=True)
class PoolStats:
    """A point-in-time snapshot of pool load."""

    workers: int
    in_flight: int
    max_pending: int
    completed: int
    failed: int
    rejected: int
    background_in_flight: int = 0
    background_completed: int = 0
    background_rejected: int = 0
    deadline_shed: int = 0


class WorkerPool:
    """A ThreadPoolExecutor with admission control and async submission.

    Parameters
    ----------
    workers:
        Threads executing jobs concurrently.
    max_pending:
        Maximum jobs admitted at once (running + queued).  Submissions
        beyond it raise :class:`PoolSaturatedError` immediately.
    """

    def __init__(self, workers: int = 4, max_pending: int = 64) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_pending < workers:
            raise ValueError("max_pending must be >= workers")
        self._workers = workers
        self._max_pending = max_pending
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="blaeu-worker"
        )
        self._lock = threading.Lock()
        self._in_flight = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._background_in_flight = 0
        self._background_completed = 0
        self._background_rejected = 0
        self._deadline_shed = 0
        self._closed = False

    async def run(
        self, fn: Callable[..., T], *args: Any, background: bool = False
    ) -> T:
        """Run ``fn(*args)`` on a worker thread; await its result.

        Raises :class:`PoolSaturatedError` when the admission bound is
        reached and ``RuntimeError`` after :meth:`shutdown`.

        ``background=True`` marks the job *speculative*: it is admitted
        only onto an **idle** worker thread (``in_flight < workers``),
        so background work never queues ahead of — or behind, or at all
        with — foreground requests.  A foreground submission arriving
        while every thread is busy with background jobs still waits only
        for a thread to free, exactly as it would behind foreground
        work; what speculation can never do is consume the *admission*
        headroom between ``workers`` and ``max_pending`` that foreground
        bursts rely on.
        """
        # Shed before queueing: a request whose deadline already passed
        # (or would pass while it waits behind a full complement of
        # running jobs) gains nothing from a pool slot.  Background jobs
        # are exempt — they install their own deadline on the worker
        # thread and must not be judged by an inherited foreground one.
        if not background:
            deadline = current_deadline()
            if deadline is not None and deadline.expired():
                with self._lock:
                    self._deadline_shed += 1
                raise DeadlineExceeded(
                    f"deadline of {deadline.budget:.3f}s expired before "
                    "the job reached the pool",
                    stage="pool.admit",
                    budget=deadline.budget,
                )
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is shut down")
            if background and self._in_flight >= self._workers:
                self._background_rejected += 1
                raise PoolSaturatedError(
                    f"no idle worker for background job "
                    f"({self._in_flight} jobs in flight, "
                    f"{self._workers} workers)"
                )
            if self._in_flight >= self._max_pending:
                self._rejected += 1
                raise PoolSaturatedError(
                    f"worker pool saturated ({self._in_flight} jobs in "
                    f"flight, limit {self._max_pending})"
                )
            # Submit while still holding the lock so a concurrent
            # shutdown() cannot slip between the check and the submit.
            # The job runs under a copy of the submitter's context, so
            # trace spans opened on the worker thread parent to the
            # request span that scheduled them.
            context = contextvars.copy_context()
            try:
                future = self._executor.submit(context.run, fn, *args)
            except RuntimeError as error:
                raise RuntimeError("worker pool is shut down") from error
            self._in_flight += 1
            if background:
                self._background_in_flight += 1
        try:
            result = await asyncio.wrap_future(future)
        except BaseException:
            with self._lock:
                self._in_flight -= 1
                self._failed += 1
                if background:
                    self._background_in_flight -= 1
            raise
        with self._lock:
            self._in_flight -= 1
            self._completed += 1
            if background:
                self._background_in_flight -= 1
                self._background_completed += 1
        return result

    def stats(self) -> PoolStats:
        """A consistent snapshot of the pool counters."""
        with self._lock:
            return PoolStats(
                workers=self._workers,
                in_flight=self._in_flight,
                max_pending=self._max_pending,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                background_in_flight=self._background_in_flight,
                background_completed=self._background_completed,
                background_rejected=self._background_rejected,
                deadline_shed=self._deadline_shed,
            )

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=wait)

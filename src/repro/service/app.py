"""The serving application: engine + cache + pool behind HTTP routes.

:class:`BlaeuService` is the composition root of the serving layer.  It
installs a shared :class:`~repro.service.cache.LRUCache` on the engine
(so every session's map builds go through it), wraps a thread-safe
:class:`~repro.server.session.SessionManager`, and exposes the protocol
commands as JSON endpoints:

========================== ==========================================
route                       meaning
========================== ==========================================
``GET /healthz``            liveness + basic stats
``GET /metrics``            Prometheus-style counters and histograms
``GET /trace``              recent traces from the span ring buffer
``GET /tables``             registered table names
``GET /catalog``            tables with content fingerprints
``POST /api/<command>``     any protocol command; body = its arguments
========================== ==========================================

Engine work runs on the worker pool, never on the event loop; error
responses map onto HTTP statuses (unknown command / bad arguments →
400, missing session or table → 404, saturated pool → 503).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.engine import Blaeu
from repro.obs.metrics import Metrics, escape_label_value, reset_metrics
from repro.obs.trace import (
    Tracer,
    collect_notes,
    configure_tracing,
    format_fields,
)
from repro.server.protocol import (
    COMMANDS,
    ErrorResponse,
    ProtocolError,
    Response,
    parse_request,
)
from repro.server.session import SessionManager
from repro.service.cache import CacheStats, LRUCache
from repro.service.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    json_response,
    text_response,
)
from repro.service.pool import PoolSaturatedError, WorkerPool

__all__ = ["BlaeuService", "ServiceConfig"]

#: Error prefixes that mean "the thing you named does not exist".
_NOT_FOUND_PREFIXES = ("no session ", "no table ", "no theme ", "no region ")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving layer (the engine has its own config)."""

    host: str = "127.0.0.1"
    port: int = 8787
    cache_size: int = 256
    cache_ttl: float | None = None
    workers: int = 4
    max_pending: int = 64
    read_timeout: float = 30.0
    trace_enabled: bool = False
    trace_buffer_size: int = 512
    slow_op_threshold: float | None = None
    access_log: bool = False

    def __post_init__(self) -> None:
        if self.cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        if self.cache_ttl is not None and self.cache_ttl <= 0:
            raise ValueError("cache_ttl must be positive (or None)")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.max_pending < self.workers:
            raise ValueError("max_pending must be >= workers")
        if self.trace_buffer_size < 1:
            raise ValueError("trace_buffer_size must be at least 1")
        if self.slow_op_threshold is not None and self.slow_op_threshold <= 0:
            raise ValueError("slow_op_threshold must be positive (or None)")


class BlaeuService:
    """The HTTP service over one engine.

    Parameters
    ----------
    engine:
        The engine with tables already registered.  The service installs
        its shared map cache on it (unless the engine already has one).
    config:
        Serving-layer knobs.
    """

    def __init__(
        self, engine: Blaeu, config: ServiceConfig | None = None
    ) -> None:
        self._config = config or ServiceConfig()
        self._engine = engine
        if engine.map_cache is None:
            engine.set_map_cache(
                LRUCache(
                    max_size=self._config.cache_size,
                    ttl=self._config.cache_ttl,
                )
            )
        self._manager = SessionManager(engine)
        # One composition root, one registry: every layer (graph builds,
        # map pipeline, store scans) records into the process-global
        # registry installed here, so /metrics shows blaeu_graph_*,
        # blaeu_pipeline_* and blaeu_store_* alongside the HTTP numbers.
        self._metrics = reset_metrics()
        self._tracer = configure_tracing(
            enabled=self._config.trace_enabled,
            buffer_size=self._config.trace_buffer_size,
            slow_op_threshold=self._config.slow_op_threshold,
        )
        #: Where access-log lines go (swapped out by tests).
        self.access_log_sink: Callable[[str], None] = (
            lambda line: print(line, file=sys.stderr)
        )
        #: Sessions with an exact-count refinement in flight, plus the
        #: asyncio tasks driving them (cancelled on shutdown).
        self._refining: set[str] = set()
        self._refine_tasks: set[asyncio.Task] = set()
        self._stopping = False
        self._pool = WorkerPool(
            workers=self._config.workers,
            max_pending=self._config.max_pending,
        )
        self._http = HttpServer(
            self._route,
            host=self._config.host,
            port=self._config.port,
            read_timeout=self._config.read_timeout,
        )
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def config(self) -> ServiceConfig:
        """The serving-layer configuration."""
        return self._config

    @property
    def manager(self) -> SessionManager:
        """The session manager (shared with in-process callers)."""
        return self._manager

    @property
    def cache(self) -> object:
        """The shared map result cache (usually an :class:`LRUCache`).

        An engine may arrive with its own duck-typed cache installed
        (``get``/``put`` is the only required surface), so callers that
        want statistics must go through :meth:`cache_stats`.
        """
        return self._engine.map_cache

    def cache_stats(self) -> "CacheStats | None":
        """The cache's statistics, or ``None`` for stat-less caches."""
        stats = getattr(self._engine.map_cache, "stats", None)
        return stats() if callable(stats) else None

    @property
    def metrics(self) -> Metrics:
        """The metric registry behind ``/metrics``."""
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        """The tracer behind ``/trace`` (disabled unless configured)."""
        return self._tracer

    @property
    def pool(self) -> WorkerPool:
        """The worker pool running engine commands."""
        return self._pool

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        return self._http.port

    @property
    def host(self) -> str:
        """The bind host."""
        return self._http.host

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket; returns once requests are served."""
        await self._http.start()
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain workers."""
        self._stopping = True
        await self._http.stop()
        for task in list(self._refine_tasks):
            task.cancel()
        if self._refine_tasks:
            await asyncio.gather(*self._refine_tasks, return_exceptions=True)
        self._pool.shutdown(wait=True)

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or task cancellation)."""
        with contextlib.suppress(asyncio.CancelledError):
            await self._http.serve_forever()

    def run(self) -> None:
        """Blocking entry point with SIGINT/SIGTERM-triggered shutdown."""
        asyncio.run(self._run())

    async def _run(self) -> None:
        await self.start()
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # pragma: no cover
                loop.add_signal_handler(signum, stop_requested.set)
        print(
            f"blaeu service listening on http://{self.host}:{self.port} "
            f"({len(self._engine.tables())} tables, "
            f"cache={self._config.cache_size}, "
            f"workers={self._config.workers})"
        )
        serve_task = asyncio.create_task(self.serve_forever())
        await stop_requested.wait()
        await self.stop()
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(self, request: HttpRequest) -> HttpResponse:
        started = time.perf_counter()
        with self._tracer.span("http.request") as span, collect_notes() as notes:
            try:
                route, response = await self._dispatch(request)
            except HttpError as error:
                # Count request-level failures (e.g. malformed JSON
                # bodies) too — otherwise abusive traffic is invisible
                # in /metrics.  The path is attacker-controlled, so it
                # must be escaped before becoming a label value.
                route, response = escape_label_value(request.path), json_response(
                    {"ok": False, "error": error.message}, error.status
                )
            if span.enabled:
                span.set("method", request.method)
                span.set("route", route)
                span.set("status", response.status)
                response.headers["X-Blaeu-Trace"] = span.trace_id
        duration = time.perf_counter() - started
        self._metrics.observe_request(route, response.status, duration)
        if self._config.access_log:
            fields: dict[str, object] = {
                "method": request.method,
                "route": route,
                "status": response.status,
                "duration_ms": round(duration * 1000, 3),
            }
            fields.update(notes)
            if span.enabled:
                fields["trace"] = span.trace_id
            self.access_log_sink(format_fields("access", **fields))
        return response

    async def _dispatch(
        self, request: HttpRequest
    ) -> tuple[str, HttpResponse]:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            return path, self._handle_healthz(request)
        if path == "/metrics":
            return path, self._handle_metrics(request)
        if path == "/trace":
            return path, self._handle_trace(request)
        if path == "/tables":
            return path, await self._run_command(request, "tables", {})
        if path == "/catalog":
            return path, await self._run_command(request, "catalog", {})
        if path.startswith("/api/"):
            command = path[len("/api/") :]
            if request.method != "POST":
                return path, json_response(
                    {"ok": False, "error": "use POST for /api/ commands"},
                    405,
                )
            if command not in COMMANDS:
                return "/api/<unknown>", json_response(
                    {
                        "ok": False,
                        "error": (
                            f"unknown command {command!r}; "
                            f"known: {sorted(COMMANDS)}"
                        ),
                    },
                    404,
                )
            return path, await self._run_command(
                request, command, request.json()
            )
        return "/<unknown>", json_response(
            {"ok": False, "error": f"no route {request.path!r}"}, 404
        )

    def _handle_healthz(self, request: HttpRequest) -> HttpResponse:
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        cache = self.cache_stats()
        pool = self._pool.stats()
        payload: dict[str, object] = {
            "ok": True,
            "status": "healthy",
            "uptime_seconds": round(uptime, 3),
            "tables": len(self._engine.tables()),
            "sessions": len(self._manager.session_ids()),
            "pool": {
                "in_flight": pool.in_flight,
                "workers": pool.workers,
            },
        }
        if cache is not None:
            payload["cache"] = {
                "size": cache.size,
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": round(cache.hit_rate, 4),
            }
        return json_response(payload)

    def _handle_trace(self, request: HttpRequest) -> HttpResponse:
        """Recent traces from the ring buffer (newest first)."""
        limit = 10
        values = request.query.get("limit")
        if values:
            try:
                limit = int(values[0])
            except ValueError as error:
                raise HttpError(
                    400, f"limit must be an integer, got {values[0]!r}"
                ) from error
            if limit < 1:
                raise HttpError(400, "limit must be at least 1")
        return json_response(
            {
                "ok": True,
                "enabled": self._tracer.enabled,
                "traces": self._tracer.traces(limit=limit),
            }
        )

    def _handle_metrics(self, request: HttpRequest) -> HttpResponse:
        cache = self.cache_stats()
        pool = self._pool.stats()
        if cache is not None:
            self._metrics.set_gauge("blaeu_cache_entries", cache.size)
            self._metrics.set_gauge("blaeu_cache_hits_total", cache.hits)
            self._metrics.set_gauge("blaeu_cache_misses_total", cache.misses)
            self._metrics.set_gauge(
                "blaeu_cache_evictions_total", cache.evictions
            )
        self._metrics.set_gauge("blaeu_pool_in_flight", pool.in_flight)
        self._metrics.set_gauge("blaeu_pool_completed_total", pool.completed)
        self._metrics.set_gauge("blaeu_pool_failed_total", pool.failed)
        self._metrics.set_gauge("blaeu_pool_rejected_total", pool.rejected)
        self._metrics.set_gauge(
            "blaeu_sessions_active", len(self._manager.session_ids())
        )
        graph = self._engine.graph_builder.stats()
        self._metrics.set_gauge(
            "blaeu_graph_last_build_seconds", graph["last_build_seconds"]
        )
        self._metrics.set_gauge(
            "blaeu_graph_code_cache_entries",
            len(self._engine.graph_builder.code_cache),
        )
        pipeline = self._engine.map_builder.stats()
        self._metrics.set_gauge(
            "blaeu_pipeline_last_build_seconds",
            pipeline["last_build_seconds"],
        )
        self._metrics.set_gauge(
            "blaeu_pipeline_refining_sessions", len(self._refining)
        )
        return text_response(self._metrics.render())

    async def _run_command(
        self,
        request: HttpRequest,
        command: str,
        args: dict[str, object],
    ) -> HttpResponse:
        """Validate a protocol command and run it on the worker pool."""
        payload = dict(args)
        payload["command"] = command  # the route, not the body, is authoritative
        try:
            parsed = parse_request(json.dumps(payload))
        except ProtocolError as error:
            return json_response({"ok": False, "error": str(error)}, 400)
        except TypeError as error:
            return json_response(
                {"ok": False, "error": f"unserializable arguments: {error}"},
                400,
            )
        try:
            result = await self._pool.run(self._manager.handle, parsed)
        except PoolSaturatedError as error:
            return json_response({"ok": False, "error": str(error)}, 503)
        if isinstance(result, Response):
            payload: dict[str, object] = {"ok": True, **result.payload}
            self._annotate_counts(payload)
            return json_response(payload)
        assert isinstance(result, ErrorResponse)
        body: dict[str, object] = {
            "ok": False,
            "error": result.error,
            "command": command,
        }
        if result.code:
            # Structured client errors (e.g. the map pipeline rejecting
            # the request as posed) carry their machine-readable code.
            body["code"] = result.code
        return json_response(body, self._error_status(result.error))

    def _annotate_counts(self, payload: dict[str, object]) -> None:
        """Surface count-refinement status on map-bearing responses.

        Approximate maps additionally schedule the exact routing pass
        on the worker pool, so ``/map`` (and every other map-returning
        command) answers immediately and later reads see
        ``counts_status="exact"`` once the background pass patched the
        shared cache and the session state.
        """
        data_map = payload.get("map")
        if not isinstance(data_map, dict) or "counts_status" not in data_map:
            return
        status = str(data_map["counts_status"])
        session_id = str(payload.get("session", ""))
        if status != "exact" and session_id:
            self._schedule_refine(session_id)
        payload["counts_status"] = status
        payload["refining"] = session_id in self._refining

    def _schedule_refine(self, session_id: str) -> None:
        """Queue one background exact-count pass for a session."""
        if session_id in self._refining:
            return
        self._refining.add(session_id)
        task = asyncio.create_task(self._refine(session_id))
        self._refine_tasks.add(task)
        task.add_done_callback(self._refine_tasks.discard)

    async def _refine(self, session_id: str) -> None:
        """Drive one refinement through the pool (best-effort).

        A saturated pool backs off and retries — interactive traffic
        keeps priority; a pool shut down mid-flight ends the attempt.
        On a clean finish the session is re-checked *after* the
        in-flight flag drops: a navigation that slipped a new
        approximate state into the flag's last open window gets its own
        pass instead of being masked by the dying one.

        The task inherited the originating request's context (captured
        at ``create_task`` time), so this span joins that request's
        trace — the trace tree shows which navigation triggered the
        background pass.
        """
        clean = False
        with self._tracer.span("refine.session") as span:
            if span.enabled:
                span.set("session", session_id)
            try:
                while True:
                    try:
                        refined = await self._pool.run(
                            self._manager.refine_session, session_id
                        )
                    except PoolSaturatedError:
                        await asyncio.sleep(0.05)
                        continue
                    except RuntimeError as error:
                        if "worker pool is shut down" in str(error):
                            return  # service stopping; nothing to record
                        self._metrics.increment(
                            "blaeu_pipeline_refine_errors_total"
                        )
                        return
                    except Exception:
                        self._metrics.increment(
                            "blaeu_pipeline_refine_errors_total"
                        )
                        return
                    if not refined:
                        clean = True
                        return
                    # A navigation may have raced past the snapshot and
                    # left a newer approximate state; keep going until
                    # the session shows exact counts.
            finally:
                if span.enabled:
                    span.set("clean", clean)
                self._refining.discard(session_id)
                if (
                    clean
                    and not self._stopping
                    and self._manager.needs_refine(session_id)
                ):
                    self._schedule_refine(session_id)

    @staticmethod
    def _error_status(error: str) -> int:
        """Map an engine error message onto an HTTP status.

        ``str(KeyError(...))`` wraps the message in quotes, so strip
        them before matching the not-found prefixes.
        """
        if error.lstrip("'\"").startswith(_NOT_FOUND_PREFIXES):
            return 404
        return 400

"""The serving application: engine + cache + pool behind HTTP routes.

:class:`BlaeuService` is the composition root of the serving layer.  It
installs a shared :class:`~repro.service.cache.LRUCache` on the engine
(so every session's map builds go through it), wraps a thread-safe
:class:`~repro.server.session.SessionManager`, and exposes the protocol
commands as JSON endpoints:

========================== ==========================================
route                       meaning
========================== ==========================================
``GET /healthz``            liveness + basic stats
``GET /metrics``            Prometheus-style counters and histograms
``GET /trace``              recent traces from the span ring buffer
``GET /tables``             registered table names
``GET /catalog``            tables with content fingerprints
``POST /api/<command>``     any protocol command; body = its arguments
========================== ==========================================

Engine work runs on the worker pool, never on the event loop; error
responses map onto HTTP statuses (unknown command / bad arguments →
400, missing session or table → 404, saturated pool → 503).
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import os
import signal
import sys
import time
from dataclasses import dataclass
from typing import Callable
from urllib.parse import urlencode

from repro.core.engine import Blaeu
from repro.core.pipeline import MapBuildError
from repro.guide.prefetch import PrefetchScheduler, plan_session, plan_table
from repro.obs.metrics import Metrics, escape_label_value, reset_metrics
from repro.obs.trace import (
    Tracer,
    collect_notes,
    configure_tracing,
    format_fields,
)
from repro.resilience.breaker import STATE_CODES, CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    clear_deadline,
    current_deadline,
    deadline_scope,
    reset_deadline,
    set_deadline,
)
from repro.resilience.faults import fault_point
from repro.server.protocol import (
    COMMANDS,
    ErrorResponse,
    ProtocolError,
    Response,
    parse_request,
)
from repro.server.session import SessionManager
from repro.service.cache import CacheStats, LRUCache, TieredCache
from repro.service.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    json_response,
    redirect_response,
    text_response,
)
from repro.service.pool import PoolSaturatedError, WorkerPool
from repro.store.artifacts import DEFAULT_MAX_BYTES, ArtifactCache

__all__ = [
    "BlaeuService",
    "CacheConfig",
    "GuideConfig",
    "PoolConfig",
    "ResilienceConfig",
    "ServiceConfig",
    "TraceConfig",
]

#: Error prefixes that mean "the thing you named does not exist".
_NOT_FOUND_PREFIXES = ("no session ", "no table ", "no theme ", "no region ")

#: Legacy routes kept as 307 shims for one release (→ their /v1 homes).
LEGACY_ROUTES = {
    "/tables": "/v1/tables",
    "/catalog": "/v1/tables",
    "/trace": "/v1/traces",
}


def _env(name: str) -> str | None:
    value = os.environ.get(name, "").strip()
    return value or None


def _env_int(name: str) -> int | None:
    value = _env(name)
    if value is None:
        return None
    try:
        return int(value)
    except ValueError as error:
        raise ValueError(f"{name} must be an integer, got {value!r}") from error


def _env_float(name: str) -> float | None:
    value = _env(name)
    if value is None:
        return None
    try:
        return float(value)
    except ValueError as error:
        raise ValueError(f"{name} must be a number, got {value!r}") from error


def _env_bool(name: str) -> bool | None:
    value = _env(name)
    if value is None:
        return None
    lowered = value.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"{name} must be a boolean flag, got {value!r}")


def _pick(*candidates):
    """The first non-``None`` candidate (explicit > env > default)."""
    for candidate in candidates:
        if candidate is not None:
            return candidate
    return None


@dataclass(frozen=True)
class CacheConfig:
    """The result-cache tiers: in-memory L1, optional on-disk L2.

    ``dir=None`` disables the disk tier (single-process default);
    pointing several workers at one ``dir`` is what shares warm
    artifacts across processes and restarts.
    """

    size: int = 256
    ttl: float | None = None
    dir: str | None = None
    disk_bytes: int = DEFAULT_MAX_BYTES

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("cache_size must be at least 1")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError("cache_ttl must be positive (or None)")
        if self.disk_bytes < 1:
            raise ValueError("cache disk_bytes must be positive")


@dataclass(frozen=True)
class TraceConfig:
    """Observability knobs (tracing, slow-op log, access log)."""

    enabled: bool = False
    buffer_size: int = 512
    slow_op_threshold: float | None = None
    access_log: bool = False

    def __post_init__(self) -> None:
        if self.buffer_size < 1:
            raise ValueError("trace_buffer_size must be at least 1")
        if self.slow_op_threshold is not None and self.slow_op_threshold <= 0:
            raise ValueError("slow_op_threshold must be positive (or None)")


@dataclass(frozen=True)
class PoolConfig:
    """Concurrency shape: threads per worker, processes per service."""

    threads: int = 4
    max_pending: int = 64
    processes: int = 1

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("workers must be at least 1")
        if self.max_pending < self.threads:
            raise ValueError("max_pending must be >= workers")
        if self.processes < 1:
            raise ValueError("processes must be at least 1")


@dataclass(frozen=True)
class GuideConfig:
    """Guided exploration: suggestion depth and speculative prefetch.

    ``prefetch`` is opt-in: when on, every served map/theme response
    plans the top-``top_n`` suggested next actions and builds them as
    background pool jobs into the shared cache (at most
    ``prefetch_jobs`` at a time, only on idle workers, cancelled when
    the user navigates elsewhere).  Suggestions themselves are always
    available — the ``/v1/.../suggestions`` endpoint and the
    ``suggest`` command work with prefetch off.
    """

    top_n: int = 3
    prefetch: bool = False
    prefetch_jobs: int = 1

    def __post_init__(self) -> None:
        if self.top_n < 1:
            raise ValueError("guide top_n must be at least 1")
        if self.prefetch_jobs < 1:
            raise ValueError("guide prefetch_jobs must be at least 1")


@dataclass(frozen=True)
class ResilienceConfig:
    """Deadlines, degradation and the L2 circuit breaker.

    ``request_deadline=None`` means requests carry no default budget —
    only an explicit ``X-Blaeu-Deadline`` header installs one.  The
    header, when present, always wins (clamped to ``max_deadline``).

    ``degrade_when_busy`` lets map requests fall back to
    ``count_mode="approximate"`` when every pool thread is busy or the
    request's remaining budget is short — a fast degraded answer
    instead of an exact one that would queue past its deadline.
    """

    request_deadline: float | None = None
    max_deadline: float = 300.0
    drain_timeout: float = 5.0
    degrade_when_busy: bool = True
    degrade_remaining: float = 1.0
    background_deadline: float = 30.0
    breaker_failures: int = 3
    breaker_recovery: float = 5.0
    breaker_latency: float | None = None

    def __post_init__(self) -> None:
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ValueError("request_deadline must be positive (or None)")
        if self.max_deadline <= 0:
            raise ValueError("max_deadline must be positive")
        if self.drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")
        if self.background_deadline <= 0:
            raise ValueError("background_deadline must be positive")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be at least 1")
        if self.breaker_recovery <= 0:
            raise ValueError("breaker_recovery must be positive")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving layer (the engine has its own config).

    The canonical surface is the nested groups — ``cache``, ``trace``,
    ``pool`` and ``guide`` — each overridable through ``BLAEU_*``
    environment variables (explicit arguments > environment > defaults):

    ==========================  =====================================
    variable                    nested knob
    ==========================  =====================================
    ``BLAEU_CACHE_SIZE``        ``cache.size``
    ``BLAEU_CACHE_TTL``         ``cache.ttl``
    ``BLAEU_CACHE_DIR``         ``cache.dir``
    ``BLAEU_CACHE_DISK_BYTES``  ``cache.disk_bytes``
    ``BLAEU_TRACE``             ``trace.enabled``
    ``BLAEU_TRACE_BUFFER``      ``trace.buffer_size``
    ``BLAEU_SLOW_OP_THRESHOLD`` ``trace.slow_op_threshold``
    ``BLAEU_ACCESS_LOG``        ``trace.access_log``
    ``BLAEU_THREADS``           ``pool.threads``
    ``BLAEU_MAX_PENDING``       ``pool.max_pending``
    ``BLAEU_WORKERS``           ``pool.processes``
    ``BLAEU_GUIDE_TOP_N``       ``guide.top_n``
    ``BLAEU_GUIDE_PREFETCH``    ``guide.prefetch``
    ``BLAEU_GUIDE_PREFETCH_JOBS`` ``guide.prefetch_jobs``
    ``BLAEU_REQUEST_DEADLINE``  ``resilience.request_deadline``
    ``BLAEU_DRAIN_TIMEOUT``     ``resilience.drain_timeout``
    ``BLAEU_DEGRADE_WHEN_BUSY`` ``resilience.degrade_when_busy``
    ``BLAEU_BACKGROUND_DEADLINE`` ``resilience.background_deadline``
    ``BLAEU_BREAKER_FAILURES``  ``resilience.breaker_failures``
    ``BLAEU_BREAKER_RECOVERY``  ``resilience.breaker_recovery``
    ``BLAEU_BREAKER_LATENCY``   ``resilience.breaker_latency``
    ==========================  =====================================

    ``BLAEU_SCAN_JOBS`` is read one layer below the service: every
    store-backed table opened without an explicit ``scan_jobs`` (the
    engine default) takes its process-parallel scan width from it, so
    ``blaeu serve --scan-jobs N`` reaches all workers through their
    inherited environment.

    The pre-redesign flat kwargs (``cache_size``, ``cache_ttl``,
    ``workers`` — *threads*, ``max_pending``, ``trace_enabled``,
    ``trace_buffer_size``, ``slow_op_threshold``, ``access_log``) keep
    working: ``__post_init__`` folds them into the nested groups (an
    explicitly passed nested group wins) and re-materializes them as
    read-only aliases, so ``config.cache_size`` always answers.
    """

    host: str = "127.0.0.1"
    port: int = 8787
    read_timeout: float = 30.0
    cache: CacheConfig | None = None
    trace: TraceConfig | None = None
    pool: PoolConfig | None = None
    guide: GuideConfig | None = None
    resilience: ResilienceConfig | None = None
    # Legacy flat aliases; ``None`` means "not given" and defers to the
    # nested group, the environment, then the default.
    cache_size: int | None = None
    cache_ttl: float | None = None
    workers: int | None = None
    max_pending: int | None = None
    trace_enabled: bool | None = None
    trace_buffer_size: int | None = None
    slow_op_threshold: float | None = None
    access_log: bool | None = None

    def __post_init__(self) -> None:
        cache = self.cache or CacheConfig(
            size=_pick(self.cache_size, _env_int("BLAEU_CACHE_SIZE"), 256),
            ttl=_pick(self.cache_ttl, _env_float("BLAEU_CACHE_TTL")),
            dir=_env("BLAEU_CACHE_DIR"),
            disk_bytes=_pick(
                _env_int("BLAEU_CACHE_DISK_BYTES"), DEFAULT_MAX_BYTES
            ),
        )
        trace = self.trace or TraceConfig(
            enabled=_pick(self.trace_enabled, _env_bool("BLAEU_TRACE"), False),
            buffer_size=_pick(
                self.trace_buffer_size, _env_int("BLAEU_TRACE_BUFFER"), 512
            ),
            slow_op_threshold=_pick(
                self.slow_op_threshold, _env_float("BLAEU_SLOW_OP_THRESHOLD")
            ),
            access_log=_pick(
                self.access_log, _env_bool("BLAEU_ACCESS_LOG"), False
            ),
        )
        threads = _pick(self.workers, _env_int("BLAEU_THREADS"), 4)
        pool = self.pool or PoolConfig(
            threads=threads,
            max_pending=_pick(
                self.max_pending,
                _env_int("BLAEU_MAX_PENDING"),
                max(64, threads * 4),
            ),
            processes=_pick(_env_int("BLAEU_WORKERS"), 1),
        )
        guide = self.guide or GuideConfig(
            top_n=_pick(_env_int("BLAEU_GUIDE_TOP_N"), 3),
            prefetch=_pick(_env_bool("BLAEU_GUIDE_PREFETCH"), False),
            prefetch_jobs=_pick(_env_int("BLAEU_GUIDE_PREFETCH_JOBS"), 1),
        )
        resilience = self.resilience or ResilienceConfig(
            request_deadline=_env_float("BLAEU_REQUEST_DEADLINE"),
            drain_timeout=_pick(_env_float("BLAEU_DRAIN_TIMEOUT"), 5.0),
            degrade_when_busy=_pick(
                _env_bool("BLAEU_DEGRADE_WHEN_BUSY"), True
            ),
            background_deadline=_pick(
                _env_float("BLAEU_BACKGROUND_DEADLINE"), 30.0
            ),
            breaker_failures=_pick(_env_int("BLAEU_BREAKER_FAILURES"), 3),
            breaker_recovery=_pick(_env_float("BLAEU_BREAKER_RECOVERY"), 5.0),
            breaker_latency=_env_float("BLAEU_BREAKER_LATENCY"),
        )
        # Materialize both surfaces: nested groups for new callers,
        # resolved flat aliases for pre-redesign ones.
        object.__setattr__(self, "cache", cache)
        object.__setattr__(self, "trace", trace)
        object.__setattr__(self, "pool", pool)
        object.__setattr__(self, "guide", guide)
        object.__setattr__(self, "resilience", resilience)
        object.__setattr__(self, "cache_size", cache.size)
        object.__setattr__(self, "cache_ttl", cache.ttl)
        object.__setattr__(self, "workers", pool.threads)
        object.__setattr__(self, "max_pending", pool.max_pending)
        object.__setattr__(self, "trace_enabled", trace.enabled)
        object.__setattr__(self, "trace_buffer_size", trace.buffer_size)
        object.__setattr__(self, "slow_op_threshold", trace.slow_op_threshold)
        object.__setattr__(self, "access_log", trace.access_log)


class BlaeuService:
    """The HTTP service over one engine.

    Parameters
    ----------
    engine:
        The engine with tables already registered.  The service installs
        its shared map cache on it (unless the engine already has one).
    config:
        Serving-layer knobs.
    """

    def __init__(
        self, engine: Blaeu, config: ServiceConfig | None = None
    ) -> None:
        self._config = config or ServiceConfig()
        self._engine = engine
        #: Circuit breaker guarding the L2 disk tier (None without one).
        self._breaker: CircuitBreaker | None = None
        if engine.map_cache is None:
            cache_config = self._config.cache
            resilience = self._config.resilience
            memory = LRUCache(
                max_size=cache_config.size, ttl=cache_config.ttl
            )
            if cache_config.dir:
                self._breaker = CircuitBreaker(
                    name="l2",
                    failure_threshold=resilience.breaker_failures,
                    recovery_time=resilience.breaker_recovery,
                    latency_threshold=resilience.breaker_latency,
                )
                engine.set_map_cache(
                    TieredCache(
                        memory,
                        ArtifactCache(
                            cache_config.dir,
                            max_bytes=cache_config.disk_bytes,
                            breaker=self._breaker,
                        ),
                    )
                )
            else:
                engine.set_map_cache(memory)
        self._manager = SessionManager(engine)
        # One composition root, one registry: every layer (graph builds,
        # map pipeline, store scans) records into the process-global
        # registry installed here, so /metrics shows blaeu_graph_*,
        # blaeu_pipeline_* and blaeu_store_* alongside the HTTP numbers.
        self._metrics = reset_metrics()
        self._tracer = configure_tracing(
            enabled=self._config.trace_enabled,
            buffer_size=self._config.trace_buffer_size,
            slow_op_threshold=self._config.slow_op_threshold,
        )
        #: Where access-log lines go (swapped out by tests).
        self.access_log_sink: Callable[[str], None] = (
            lambda line: print(line, file=sys.stderr)
        )
        #: Sessions with an exact-count refinement in flight, plus the
        #: asyncio tasks driving them (cancelled on shutdown).
        self._refining: set[str] = set()
        self._refine_tasks: set[asyncio.Task] = set()
        self._stopping = False
        self._pool = WorkerPool(
            workers=self._config.workers,
            max_pending=self._config.max_pending,
        )
        #: The speculative-prefetch scheduler (``None`` unless enabled):
        #: after served map/theme responses it plans the top suggested
        #: next actions and warms the shared cache through idle pool
        #: slots.
        self._prefetcher: PrefetchScheduler | None = None
        if self._config.guide.prefetch:
            self._prefetcher = PrefetchScheduler(
                self._pool,
                top_n=self._config.guide.top_n,
                jobs=self._config.guide.prefetch_jobs,
                deadline=self._config.resilience.background_deadline,
            )
        self._http = HttpServer(
            self._route,
            host=self._config.host,
            port=self._config.port,
            read_timeout=self._config.read_timeout,
        )
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def config(self) -> ServiceConfig:
        """The serving-layer configuration."""
        return self._config

    @property
    def manager(self) -> SessionManager:
        """The session manager (shared with in-process callers)."""
        return self._manager

    @property
    def engine(self) -> Blaeu:
        """The engine this service fronts."""
        return self._engine

    @property
    def cache(self) -> object:
        """The shared map result cache (usually an :class:`LRUCache`).

        An engine may arrive with its own duck-typed cache installed
        (``get``/``put`` is the only required surface), so callers that
        want statistics must go through :meth:`cache_stats`.
        """
        return self._engine.map_cache

    def cache_stats(self) -> "CacheStats | None":
        """The cache's statistics, or ``None`` for stat-less caches."""
        stats = getattr(self._engine.map_cache, "stats", None)
        return stats() if callable(stats) else None

    @property
    def metrics(self) -> Metrics:
        """The metric registry behind ``/metrics``."""
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        """The tracer behind ``/trace`` (disabled unless configured)."""
        return self._tracer

    @property
    def pool(self) -> WorkerPool:
        """The worker pool running engine commands."""
        return self._pool

    @property
    def prefetcher(self) -> PrefetchScheduler | None:
        """The speculative-prefetch scheduler (``None`` when disabled)."""
        return self._prefetcher

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        return self._http.port

    @property
    def host(self) -> str:
        """The bind host."""
        return self._http.host

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket; returns once requests are served."""
        await self._http.start()
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, then tear down.

        In-flight requests get ``resilience.drain_timeout`` seconds to
        finish before their connections are cancelled — a SIGTERM from
        the supervisor no longer severs responses mid-flight.
        """
        self._stopping = True
        await self._http.drain(self._config.resilience.drain_timeout)
        await self._http.stop()
        if self._prefetcher is not None:
            await self._prefetcher.aclose()
        for task in list(self._refine_tasks):
            task.cancel()
        if self._refine_tasks:
            await asyncio.gather(*self._refine_tasks, return_exceptions=True)
        self._pool.shutdown(wait=True)

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or task cancellation)."""
        with contextlib.suppress(asyncio.CancelledError):
            await self._http.serve_forever()

    def run(self, port_file: str | None = None) -> None:
        """Blocking entry point with SIGINT/SIGTERM-triggered shutdown.

        ``port_file`` (written atomically after bind) is how supervisor
        workers announce the port they got when asked for port 0.
        """
        asyncio.run(self._run(port_file))

    async def _run(self, port_file: str | None = None) -> None:
        await self.start()
        if port_file:
            tmp = f"{port_file}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(str(self.port))
            os.replace(tmp, port_file)
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # pragma: no cover
                loop.add_signal_handler(signum, stop_requested.set)
        print(
            f"blaeu service listening on http://{self.host}:{self.port} "
            f"({len(self._engine.tables())} tables, "
            f"cache={self._config.cache_size}, "
            f"workers={self._config.workers})"
        )
        serve_task = asyncio.create_task(self.serve_forever())
        await stop_requested.wait()
        await self.stop()
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _request_deadline(self, request: HttpRequest) -> Deadline | None:
        """The request's budget: header wins, config default otherwise."""
        resilience = self._config.resilience
        header = request.headers.get("x-blaeu-deadline")
        budget = resilience.request_deadline
        if header is not None:
            try:
                budget = float(header)
            except ValueError:
                raise HttpError(
                    400, f"X-Blaeu-Deadline must be seconds, got {header!r}"
                ) from None
            if budget <= 0:
                raise HttpError(400, "X-Blaeu-Deadline must be positive")
            budget = min(budget, resilience.max_deadline)
        if budget is None:
            return None
        return Deadline.after(budget)

    async def _route(self, request: HttpRequest) -> HttpResponse:
        started = time.perf_counter()
        # Chaos hook: lets the fault harness kill or wedge this worker
        # mid-request (health endpoints stay clean so probes and the
        # bench's metric scrapes don't consume the fault budget).
        if request.path not in ("/healthz", "/metrics"):
            fault_point("worker.request")
        with self._tracer.span("http.request") as span, collect_notes() as notes:
            token = None
            try:
                token = set_deadline(self._request_deadline(request))
                route, response = await self._dispatch(request)
            except DeadlineExceeded as error:
                self._metrics.increment(
                    "blaeu_resilience_deadline_exceeded_total"
                )
                route, response = escape_label_value(request.path), json_response(
                    {
                        "ok": False,
                        "error": str(error),
                        "code": "deadline_exceeded",
                    },
                    504,
                )
            except HttpError as error:
                # Count request-level failures (e.g. malformed JSON
                # bodies) too — otherwise abusive traffic is invisible
                # in /metrics.  The path is attacker-controlled, so it
                # must be escaped before becoming a label value.
                route, response = escape_label_value(request.path), json_response(
                    {
                        "ok": False,
                        "error": error.message,
                        "code": error.code,
                    },
                    error.status,
                    headers=error.headers,
                )
            finally:
                if token is not None:
                    reset_deadline(token)
            if span.enabled:
                span.set("method", request.method)
                span.set("route", route)
                span.set("status", response.status)
                response.headers["X-Blaeu-Trace"] = span.trace_id
        duration = time.perf_counter() - started
        self._metrics.observe_request(route, response.status, duration)
        if self._config.access_log:
            fields: dict[str, object] = {
                "method": request.method,
                "route": route,
                "status": response.status,
                "duration_ms": round(duration * 1000, 3),
            }
            fields.update(notes)
            if span.enabled:
                fields["trace"] = span.trace_id
            self.access_log_sink(format_fields("access", **fields))
        return response

    async def _dispatch(
        self, request: HttpRequest
    ) -> tuple[str, HttpResponse]:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            return path, self._handle_healthz(request)
        if path == "/metrics":
            return path, self._handle_metrics(request)
        # Legacy routes answer 307 (method- and body-preserving) shims
        # into the /v1 namespace for one release.
        if path in LEGACY_ROUTES:
            return path, redirect_response(
                self._shim_target(LEGACY_ROUTES[path], request)
            )
        if path.startswith("/api/"):
            return path, redirect_response(
                self._shim_target(
                    "/v1/commands/" + path[len("/api/") :], request
                )
            )
        if path == "/v1/tables":
            if request.method != "GET":
                return path, self._method_not_allowed("GET")
            return path, await self._run_command(request, "catalog", {})
        if path == "/v1/traces":
            if request.method != "GET":
                return path, self._method_not_allowed("GET")
            return path, self._handle_trace(request)
        if path.startswith("/v1/tables/"):
            return await self._dispatch_table_resource(request, path)
        if path.startswith("/v1/commands/"):
            command = path[len("/v1/commands/") :]
            if request.method != "POST":
                return path, self._method_not_allowed("POST")
            if command not in COMMANDS:
                return "/v1/commands/<unknown>", json_response(
                    {
                        "ok": False,
                        "error": (
                            f"unknown command {command!r}; "
                            f"known: {sorted(COMMANDS)}"
                        ),
                        "code": "unknown_command",
                    },
                    404,
                )
            return path, await self._run_command(
                request, command, request.json()
            )
        return "/<unknown>", json_response(
            {
                "ok": False,
                "error": f"no route {request.path!r}",
                "code": "unknown_route",
            },
            404,
        )

    @staticmethod
    def _shim_target(base: str, request: HttpRequest) -> str:
        """The /v1 home of a legacy route, query string preserved."""
        if not request.query:
            return base
        return base + "?" + urlencode(request.query, doseq=True)

    @staticmethod
    def _method_not_allowed(allowed: str) -> HttpResponse:
        return json_response(
            {
                "ok": False,
                "error": f"use {allowed} for this resource",
                "code": "method_not_allowed",
            },
            405,
        )

    async def _dispatch_table_resource(
        self, request: HttpRequest, path: str
    ) -> tuple[str, HttpResponse]:
        """Resource routes under ``/v1/tables/{table}/…``.

        ``{table}`` accepts a registered name or a full content
        fingerprint (the identity the artifact tiers and the
        multi-worker router key on).
        """
        parts = path[len("/v1/tables/") :].split("/")
        if len(parts) != 2 or parts[1] not in (
            "map",
            "graph",
            "themes",
            "suggestions",
        ):
            return "/v1/tables/<unknown>", json_response(
                {
                    "ok": False,
                    "error": f"no route {request.path!r}",
                    "code": "unknown_route",
                },
                404,
            )
        ref, resource = parts
        route = f"/v1/tables/<table>/{resource}"
        if request.method != "GET":
            return route, self._method_not_allowed("GET")
        table = self._resolve_table(ref)
        if table is None:
            return route, json_response(
                {
                    "ok": False,
                    "error": f"no table {ref!r}",
                    "code": "not_found",
                },
                404,
            )
        if resource == "themes":
            return route, await self._run_command(
                request, "themes", {"table": table}
            )
        if resource == "graph":
            handler = self._handle_graph
        elif resource == "suggestions":
            handler = self._handle_suggestions
        elif self._should_degrade():
            # Every thread is busy (or the budget is nearly spent):
            # serve approximate counts now rather than queue an exact
            # build past the deadline.
            self._metrics.increment("blaeu_resilience_degraded_total")
            handler = functools.partial(
                self._handle_map, count_mode="approximate"
            )
        else:
            handler = self._handle_map
        try:
            response = await self._pool.run(handler, table, request)
        except PoolSaturatedError as error:
            return route, json_response(
                {"ok": False, "error": str(error), "code": "pool_saturated"},
                503,
                headers={"Retry-After": "1"},
            )
        if resource == "map" and response.status == 200:
            self._speculate_table(table, request)
        return route, response

    def _should_degrade(self) -> bool:
        """Serve a degraded (approximate-count) map for this request?"""
        resilience = self._config.resilience
        if not resilience.degrade_when_busy:
            return False
        deadline = current_deadline()
        if (
            deadline is not None
            and deadline.remaining() < resilience.degrade_remaining
        ):
            return True
        stats = self._pool.stats()
        return stats.in_flight >= stats.workers

    def _resolve_table(self, ref: str) -> str | None:
        """A table name from a name or content-fingerprint reference."""
        if ref in self._engine.tables():
            return ref
        for record in self._engine.database.catalog():
            if record["fingerprint"] == ref:
                return str(record["name"])
        return None

    def _handle_map(
        self,
        table: str,
        request: HttpRequest,
        count_mode: str | None = None,
    ) -> HttpResponse:
        """``GET /v1/tables/{table}/map`` — a stateless one-shot map.

        ``?theme=<index|name>`` or ``?columns=a,b,c`` choose the column
        set (a bare table defaults to its first theme); ``?k=`` forces
        the cluster count.  ``count_mode`` is the degradation override
        (load shedding serves ``"approximate"``).  Runs on the worker
        pool.
        """
        columns, theme, k = self._map_request_params(table, request)
        if columns is None:
            themes = self._engine.themes(table)
            ref: str | int = theme if theme is not None else 0
            try:
                resolved = (
                    themes[ref] if isinstance(ref, int) else themes.theme(ref)
                )
                columns = tuple(resolved.columns)
            except (KeyError, IndexError):
                return json_response(
                    {
                        "ok": False,
                        "error": f"no theme {ref!r} on table {table!r}",
                        "code": "not_found",
                    },
                    404,
                )
        try:
            data_map = self._engine.map(
                table, columns, k=k, count_mode=count_mode
            )
        except MapBuildError as error:
            return json_response(
                {
                    "ok": False,
                    "error": str(error),
                    "code": "map_build_invalid",
                },
                400,
            )
        except KeyError as error:
            return json_response(
                {
                    "ok": False,
                    "error": str(error).strip("'\""),
                    "code": "not_found",
                },
                404,
            )
        payload: dict[str, object] = {
            "ok": True,
            "table": table,
            "columns": list(columns),
            "map": data_map.to_dict(),
        }
        if count_mode is not None:
            payload["degraded"] = True
        return json_response(payload)

    def _map_request_params(
        self, table: str, request: HttpRequest
    ) -> tuple[tuple[str, ...] | None, str | int | None, int | None]:
        """Parse the shared ``?theme=/?columns=/?k=`` map-request triple.

        Returns ``(columns, theme, k)`` with ``columns=None`` when the
        request defers to a theme (``theme=None`` then means "the
        table's first theme").  Raises :class:`HttpError` on malformed
        values; existence of the theme is checked by the handler that
        resolves it.
        """
        theme_values = request.query.get("theme", [])
        column_values = request.query.get("columns", [])
        k_values = request.query.get("k", [])
        k: int | None = None
        if k_values:
            try:
                k = int(k_values[0])
            except ValueError:
                raise HttpError(
                    400, f"k must be an integer, got {k_values[0]!r}"
                ) from None
        columns: tuple[str, ...] | None = None
        if column_values:
            columns = tuple(
                name.strip()
                for name in column_values[0].split(",")
                if name.strip()
            )
            if not columns:
                raise HttpError(400, "columns must name at least one column")
        theme: str | int | None = None
        if theme_values:
            word = theme_values[0]
            theme = int(word) if word.isdigit() else word
        return columns, theme, k

    def _handle_suggestions(
        self, table: str, request: HttpRequest
    ) -> HttpResponse:
        """``GET /v1/tables/{table}/suggestions`` — ranked next actions.

        Without ``?theme=``/``?columns=``: which theme to open first.
        With them: the suggested zooms / projections / re-clusterings
        of that map (built through the shared cache — a warm hit when
        the map was served before).  ``?limit=`` bounds the list.
        Deterministic for a fixed table/config/state, whatever the
        cache holds.  Runs on the worker pool.
        """
        from repro.guide.recommend import initial_suggestions, score_state
        from repro.table.predicates import Everything

        columns, theme, k = self._map_request_params(table, request)
        limit = self._config.guide.top_n
        limit_values = request.query.get("limit", [])
        if limit_values:
            try:
                limit = int(limit_values[0])
            except ValueError:
                raise HttpError(
                    400,
                    f"limit must be an integer, got {limit_values[0]!r}",
                ) from None
            if limit < 1:
                raise HttpError(400, "limit must be at least 1")
        themes = self._engine.themes(table)
        if columns is None and theme is None:
            suggestions = initial_suggestions(themes, limit=limit)
        else:
            if columns is None:
                try:
                    resolved = (
                        themes[theme]
                        if isinstance(theme, int)
                        else themes.theme(str(theme))
                    )
                    columns = tuple(resolved.columns)
                except (KeyError, IndexError):
                    return json_response(
                        {
                            "ok": False,
                            "error": f"no theme {theme!r} on table {table!r}",
                            "code": "not_found",
                        },
                        404,
                    )
            try:
                data_map = self._engine.map(table, columns, k=k)
            except MapBuildError as error:
                return json_response(
                    {
                        "ok": False,
                        "error": str(error),
                        "code": "map_build_invalid",
                    },
                    400,
                )
            except KeyError as error:
                return json_response(
                    {
                        "ok": False,
                        "error": str(error).strip("'\""),
                        "code": "not_found",
                    },
                    404,
                )
            table_obj = self._engine.database.table(table)
            suggestions = score_state(
                table_obj,
                self._engine.config,
                themes,
                data_map,
                columns,
                Everything(),
                limit=limit,
            )
        return json_response(
            {
                "ok": True,
                "table": table,
                "suggestions": [
                    {
                        "action": s.action,
                        "target": s.target,
                        "score": round(s.score, 6),
                        "reason": s.reason,
                    }
                    for s in suggestions
                ],
            }
        )

    def _speculate_table(self, table: str, request: HttpRequest) -> None:
        """Warm the suggested follow-ups of a just-served table map."""
        if self._prefetcher is None or self._stopping:
            return
        try:
            columns, theme, k = self._map_request_params(table, request)
        except HttpError:  # pragma: no cover - foreground answered 200
            return
        self._prefetcher.speculate(
            f"table:{table}",
            plan_table(
                self._engine,
                table,
                columns,
                theme,
                k,
                self._config.guide.top_n,
            ),
        )

    def _handle_graph(self, table: str, request: HttpRequest) -> HttpResponse:
        """``GET /v1/tables/{table}/graph`` — the dependency graph.

        Serves the column-dependency graph behind the table's themes as
        an explicit node/edge list (weights are the pairwise dependency
        scores the themes were partitioned on).
        """
        graph = self._engine.themes(table).graph
        edges = [
            {
                "source": graph.columns[i],
                "target": graph.columns[j],
                "weight": round(float(graph.weights[i, j]), 6),
            }
            for i in range(len(graph.columns))
            for j in range(i + 1, len(graph.columns))
        ]
        return json_response(
            {
                "ok": True,
                "table": table,
                "measure": graph.measure,
                "columns": list(graph.columns),
                "edges": edges,
            }
        )

    def _handle_healthz(self, request: HttpRequest) -> HttpResponse:
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        cache = self.cache_stats()
        pool = self._pool.stats()
        payload: dict[str, object] = {
            "ok": not self._stopping,
            "status": "draining" if self._stopping else "healthy",
            "uptime_seconds": round(uptime, 3),
            "tables": len(self._engine.tables()),
            "sessions": len(self._manager.session_ids()),
            "pool": {
                "in_flight": pool.in_flight,
                "workers": pool.workers,
            },
        }
        if cache is not None:
            payload["cache"] = {
                "size": cache.size,
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": round(cache.hit_rate, 4),
            }
        return json_response(payload)

    def _handle_trace(self, request: HttpRequest) -> HttpResponse:
        """Recent traces from the ring buffer (newest first)."""
        limit = 10
        values = request.query.get("limit")
        if values:
            try:
                limit = int(values[0])
            except ValueError as error:
                raise HttpError(
                    400, f"limit must be an integer, got {values[0]!r}"
                ) from error
            if limit < 1:
                raise HttpError(400, "limit must be at least 1")
        return json_response(
            {
                "ok": True,
                "enabled": self._tracer.enabled,
                "traces": self._tracer.traces(limit=limit),
            }
        )

    def _handle_metrics(self, request: HttpRequest) -> HttpResponse:
        cache = self.cache_stats()
        pool = self._pool.stats()
        tier_stats = getattr(self._engine.map_cache, "tier_stats", None)
        if cache is not None:
            self._metrics.set_gauge("blaeu_cache_entries", cache.size)
            if not callable(tier_stats):
                # A tiered cache reports hits/misses as per-tier labeled
                # counters (blaeu_cache_hits_total{tier="l1"|"l2"});
                # emitting the legacy unlabeled gauges under the same
                # names would render two TYPE lines for one metric.
                self._metrics.set_gauge("blaeu_cache_hits_total", cache.hits)
                self._metrics.set_gauge(
                    "blaeu_cache_misses_total", cache.misses
                )
            self._metrics.set_gauge(
                "blaeu_cache_evictions_total", cache.evictions
            )
        if callable(tier_stats):
            tiers = tier_stats()
            self._metrics.set_gauge(
                "blaeu_artifact_cache_promotions", tiers.promotions
            )
            disk = getattr(self._engine.map_cache, "disk", None)
            if disk is not None:
                disk_stats = disk.stats()
                self._metrics.set_gauge(
                    "blaeu_artifact_cache_entries", disk_stats.entries
                )
                self._metrics.set_gauge(
                    "blaeu_artifact_cache_bytes", disk_stats.total_bytes
                )
        self._metrics.set_gauge("blaeu_pool_in_flight", pool.in_flight)
        self._metrics.set_gauge("blaeu_pool_completed_total", pool.completed)
        self._metrics.set_gauge("blaeu_pool_failed_total", pool.failed)
        self._metrics.set_gauge("blaeu_pool_rejected_total", pool.rejected)
        self._metrics.set_gauge(
            "blaeu_pool_background_in_flight", pool.background_in_flight
        )
        self._metrics.set_gauge(
            "blaeu_resilience_pool_deadline_shed_total", pool.deadline_shed
        )
        if self._breaker is not None:
            self._metrics.set_gauge(
                "blaeu_resilience_breaker_state",
                STATE_CODES[self._breaker.state],
            )
        if self._prefetcher is not None:
            guide = self._prefetcher.stats()
            self._metrics.set_gauge(
                "blaeu_guide_prefetch_in_flight", guide["in_flight"]
            )
        self._metrics.set_gauge(
            "blaeu_sessions_active", len(self._manager.session_ids())
        )
        graph = self._engine.graph_builder.stats()
        self._metrics.set_gauge(
            "blaeu_graph_last_build_seconds", graph["last_build_seconds"]
        )
        self._metrics.set_gauge(
            "blaeu_graph_code_cache_entries",
            len(self._engine.graph_builder.code_cache),
        )
        pipeline = self._engine.map_builder.stats()
        self._metrics.set_gauge(
            "blaeu_pipeline_last_build_seconds",
            pipeline["last_build_seconds"],
        )
        self._metrics.set_gauge(
            "blaeu_pipeline_refining_sessions", len(self._refining)
        )
        return text_response(self._metrics.render())

    async def _run_command(
        self,
        request: HttpRequest,
        command: str,
        args: dict[str, object],
    ) -> HttpResponse:
        """Validate a protocol command and run it on the worker pool."""
        payload = dict(args)
        payload["command"] = command  # the route, not the body, is authoritative
        try:
            parsed = parse_request(json.dumps(payload))
        except ProtocolError as error:
            return json_response(
                {"ok": False, "error": str(error), "code": "bad_request"}, 400
            )
        except TypeError as error:
            return json_response(
                {
                    "ok": False,
                    "error": f"unserializable arguments: {error}",
                    "code": "bad_request",
                },
                400,
            )
        try:
            result = await self._pool.run(self._manager.handle, parsed)
        except PoolSaturatedError as error:
            return json_response(
                {"ok": False, "error": str(error), "code": "pool_saturated"},
                503,
                headers={"Retry-After": "1"},
            )
        if isinstance(result, Response):
            payload: dict[str, object] = {"ok": True, **result.payload}
            self._annotate_counts(payload)
            return json_response(payload)
        assert isinstance(result, ErrorResponse)
        status = self._error_status(result.error)
        body: dict[str, object] = {
            "ok": False,
            "error": result.error,
            "command": command,
            # Structured client errors (e.g. the map pipeline rejecting
            # the request as posed) carry their own machine-readable
            # code; everything else gets the status-derived one, so no
            # error body leaves the service without a ``code``.
            "code": result.code
            or ("not_found" if status == 404 else "bad_request"),
        }
        return json_response(body, status)

    def _annotate_counts(self, payload: dict[str, object]) -> None:
        """Surface count-refinement status on map-bearing responses.

        Approximate maps additionally schedule the exact routing pass
        on the worker pool, so ``/map`` (and every other map-returning
        command) answers immediately and later reads see
        ``counts_status="exact"`` once the background pass patched the
        shared cache and the session state.
        """
        data_map = payload.get("map")
        if not isinstance(data_map, dict) or "counts_status" not in data_map:
            return
        status = str(data_map["counts_status"])
        session_id = str(payload.get("session", ""))
        if status != "exact" and session_id:
            self._schedule_refine(session_id)
        if session_id:
            self._speculate_session(session_id)
        payload["counts_status"] = status
        payload["refining"] = session_id in self._refining

    def _speculate_session(self, session_id: str) -> None:
        """Warm the suggested follow-ups of a session's new state.

        Every map-bearing response means the session just navigated, so
        this both cancels the previous speculation for the session
        (``speculate`` bumps the scope's generation) and plans from the
        fresh state.
        """
        if self._prefetcher is None or self._stopping:
            return
        self._prefetcher.speculate(
            f"session:{session_id}",
            plan_session(
                self._manager, session_id, self._config.guide.top_n
            ),
        )

    def _schedule_refine(self, session_id: str) -> None:
        """Queue one background exact-count pass for a session."""
        if session_id in self._refining:
            return
        self._refining.add(session_id)
        task = asyncio.create_task(self._refine(session_id))
        self._refine_tasks.add(task)
        task.add_done_callback(self._refine_tasks.discard)

    async def _refine(self, session_id: str) -> None:
        """Drive one refinement through the pool (best-effort).

        A saturated pool backs off and retries — interactive traffic
        keeps priority; a pool shut down mid-flight ends the attempt.
        On a clean finish the session is re-checked *after* the
        in-flight flag drops: a navigation that slipped a new
        approximate state into the flag's last open window gets its own
        pass instead of being masked by the dying one.

        The task inherited the originating request's context (captured
        at ``create_task`` time), so this span joins that request's
        trace — the trace tree shows which navigation triggered the
        background pass.
        """
        clean = False
        # The task context was copied from the originating request, so
        # drop its deadline — the foreground budget must not cancel a
        # pass that outlives the response.  Each pool submission instead
        # runs under its own background budget so a wedged refinement
        # can never pin a worker thread indefinitely.
        clear_deadline()
        background_budget = self._config.resilience.background_deadline
        with self._tracer.span("refine.session") as span:
            if span.enabled:
                span.set("session", session_id)
            try:
                while True:
                    try:
                        with deadline_scope(background_budget):
                            refined = await self._pool.run(
                                self._manager.refine_session, session_id
                            )
                    except PoolSaturatedError:
                        await asyncio.sleep(0.05)
                        continue
                    except DeadlineExceeded:
                        self._metrics.increment(
                            "blaeu_resilience_background_deadline_total"
                        )
                        return
                    except RuntimeError as error:
                        if "worker pool is shut down" in str(error):
                            return  # service stopping; nothing to record
                        self._metrics.increment(
                            "blaeu_pipeline_refine_errors_total"
                        )
                        return
                    except Exception:
                        self._metrics.increment(
                            "blaeu_pipeline_refine_errors_total"
                        )
                        return
                    if not refined:
                        clean = True
                        return
                    # A navigation may have raced past the snapshot and
                    # left a newer approximate state; keep going until
                    # the session shows exact counts.
            finally:
                if span.enabled:
                    span.set("clean", clean)
                self._refining.discard(session_id)
                if (
                    clean
                    and not self._stopping
                    and self._manager.needs_refine(session_id)
                ):
                    self._schedule_refine(session_id)

    @staticmethod
    def _error_status(error: str) -> int:
        """Map an engine error message onto an HTTP status.

        ``str(KeyError(...))`` wraps the message in quotes, so strip
        them before matching the not-found prefixes.
        """
        if error.lstrip("'\"").startswith(_NOT_FOUND_PREFIXES):
            return 404
        return 400

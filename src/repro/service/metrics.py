"""Compatibility re-exports: the registry moved to :mod:`repro.obs.metrics`.

The serving layer's ``Histogram``/``Metrics`` grew into the
process-global observability registry shared by every layer; import
them from :mod:`repro.obs` in new code.  This module keeps the old
import path working.
"""

from __future__ import annotations

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, Metrics

__all__ = ["DEFAULT_BUCKETS", "Histogram", "Metrics"]

"""Request counters and latency histograms for the serving layer.

A tiny, dependency-free take on the Prometheus text exposition format:
counters keyed by (route, status), one log-bucketed latency histogram
per route, and gauges the application layer sets directly (cache size,
pool depth).  Everything is thread-safe — requests finish on worker
threads — and :meth:`Metrics.render` produces the ``/metrics`` body.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["Histogram", "Metrics"]

#: Default latency buckets (seconds): 1 ms … 10 s, roughly log-spaced.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram:
    """A fixed-bucket histogram of observed values (seconds)."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self._buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self._buckets) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self._buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper bucket bound); 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        cumulative = self.cumulative()
        total = cumulative[-1][1]
        if total == 0:
            return 0.0
        threshold = q * total
        for bound, running in cumulative:
            if running >= threshold:
                return bound if bound != float("inf") else self._buckets[-1]
        return self._buckets[-1]  # pragma: no cover - loop always returns


class Metrics:
    """The serving layer's metric registry.

    ``observe_request`` is the single write path the HTTP layer uses;
    gauges are set by the application (cache and pool snapshots) right
    before rendering.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: dict[tuple[str, int], int] = {}
        self._latency: dict[str, Histogram] = {}
        self._gauges: dict[str, float] = {}
        self._counters: dict[str, int] = {}

    def observe_request(self, route: str, status: int, seconds: float) -> None:
        """Record one finished HTTP request."""
        with self._lock:
            key = (route, status)
            self._requests[key] = self._requests.get(key, 0) + 1
            histogram = self._latency.get(route)
            if histogram is None:
                histogram = self._latency[route] = Histogram()
        histogram.observe(seconds)

    def set_gauge(self, name: str, value: float) -> None:
        """Set an instantaneous value (cache size, pool depth, …)."""
        with self._lock:
            self._gauges[name] = float(value)

    def increment(self, name: str, by: int = 1) -> None:
        """Add to a monotonic named counter (created at first use).

        The generic sibling of ``observe_request`` for non-HTTP events —
        the graph engine counts its builds and cache hits here, so the
        same numbers back both ``/metrics`` and the CLI's build report.
        """
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        """Current value of a named counter (0 before first increment)."""
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def request_count(self, route: str | None = None) -> int:
        """Total requests (optionally restricted to one route)."""
        with self._lock:
            return sum(
                count
                for (r, _), count in self._requests.items()
                if route is None or r == route
            )

    def histogram(self, route: str) -> Histogram | None:
        """The latency histogram of ``route`` (``None`` before traffic)."""
        with self._lock:
            return self._latency.get(route)

    def render(self) -> str:
        """The Prometheus-style text body served at ``/metrics``."""
        with self._lock:
            requests = dict(self._requests)
            latency = dict(self._latency)
            gauges = dict(self._gauges)
            counters = dict(self._counters)
        lines: list[str] = []
        lines.append("# TYPE blaeu_requests_total counter")
        for (route, status), count in sorted(requests.items()):
            lines.append(
                f'blaeu_requests_total{{route="{route}",status="{status}"}} '
                f"{count}"
            )
        lines.append("# TYPE blaeu_request_seconds histogram")
        for route, histogram in sorted(latency.items()):
            for bound, running in histogram.cumulative():
                label = "+Inf" if bound == float("inf") else f"{bound:g}"
                lines.append(
                    f'blaeu_request_seconds_bucket{{route="{route}",'
                    f'le="{label}"}} {running}'
                )
            lines.append(
                f'blaeu_request_seconds_sum{{route="{route}"}} '
                f"{histogram.sum:.6f}"
            )
            lines.append(
                f'blaeu_request_seconds_count{{route="{route}"}} '
                f"{histogram.count}"
            )
        for name, value in sorted(counters.items()):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {value}")
        for name, value in sorted(gauges.items()):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value:g}")
        return "\n".join(lines) + "\n"

"""A stdlib-only ``asyncio`` HTTP/1.1 server for the serving layer.

No framework: the container ships only the scientific toolchain, and
the protocol surface Blaeu needs — short JSON requests and responses —
fits in a few hundred lines of careful parsing.  The server supports
keep-alive (interactive clients issue many small requests per
connection), bounds header and body sizes, enforces a per-read timeout
so dead peers cannot pin sockets, and hands every request to an async
handler that returns an :class:`HttpResponse`.

The handler contract is deliberately tiny so the app layer stays
testable without sockets::

    async def handler(request: HttpRequest) -> HttpResponse: ...
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "json_response",
    "redirect_response",
    "text_response",
]

#: Hard caps keeping a hostile or broken peer from exhausting memory.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    307: "Temporary Redirect",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Status → default machine-readable error code (every error body the
#: service emits carries one; see the /v1 API contract in the README).
ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    408: "request_timeout",
    413: "payload_too_large",
    429: "throttled",
    500: "internal",
    503: "unavailable",
    504: "deadline_exceeded",
}


class HttpError(Exception):
    """A request-level failure with an HTTP status and error code.

    ``code`` defaults to the status-derived code from
    :data:`ERROR_CODES`, so every error body carries a structured code
    even when the raising site only knows the status.
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: str | None = None,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code or ERROR_CODES.get(status, "error")
        self.headers = headers or {}


@dataclass(frozen=True)
class HttpRequest:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict[str, object]:
        """The body parsed as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise HttpError(400, f"malformed JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload


@dataclass(frozen=True)
class HttpResponse:
    """One HTTP response the server will serialize."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json; charset=utf-8"
    headers: dict[str, str] = field(default_factory=dict)

    def serialize(self, keep_alive: bool) -> bytes:
        """The full wire representation of the response."""
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("ascii") + self.body


def json_response(
    payload: dict[str, object],
    status: int = 200,
    headers: dict[str, str] | None = None,
) -> HttpResponse:
    """A JSON response from a payload dictionary."""
    body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return HttpResponse(status=status, body=body, headers=headers or {})


def redirect_response(location: str, status: int = 307) -> HttpResponse:
    """A redirect shim response (307 preserves method and body)."""
    return HttpResponse(
        status=status,
        body=json.dumps(
            {"ok": False, "code": "moved", "location": location},
            sort_keys=True,
        ).encode("utf-8"),
        headers={"Location": location},
    )


def text_response(text: str, status: int = 200) -> HttpResponse:
    """A plain-text response (used by ``/metrics``)."""
    return HttpResponse(
        status=status,
        body=text.encode("utf-8"),
        content_type="text/plain; charset=utf-8",
    )


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


class HttpServer:
    """An asyncio TCP server speaking enough HTTP/1.1 for the app layer.

    Parameters
    ----------
    handler:
        The async request handler; exceptions it leaks become 500s.
    host / port:
        Bind address.  ``port=0`` picks a free port (tests, benchmarks);
        the real port is available as :attr:`port` after :meth:`start`.
    read_timeout:
        Seconds an idle connection may sit between requests.
    """

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 8787,
        read_timeout: float = 30.0,
    ) -> None:
        self._handler = handler
        self._host = host
        self._port = port
        self._read_timeout = read_timeout
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task[None]] = set()
        self._active_requests = 0

    @property
    def host(self) -> str:
        """The bind host."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when 0 was asked)."""
        return self._port

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self._port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (call :meth:`start` first)."""
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    @property
    def active_requests(self) -> int:
        """Requests currently inside the handler (not idle keep-alives)."""
        return self._active_requests

    async def drain(self, timeout: float) -> bool:
        """Stop accepting and wait for in-flight *requests* to finish.

        Idle keep-alive connections do not count — only requests inside
        the handler.  Returns True when the server drained cleanly
        within ``timeout``, False when requests were still running (the
        caller will cancel them via :meth:`stop`).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        give_up = loop.time() + max(timeout, 0.0)
        while self._active_requests > 0:
            if loop.time() >= give_up:
                return False
            await asyncio.sleep(0.02)
        return True

    async def stop(self) -> None:
        """Stop accepting, cancel open connections, wait for them."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), timeout=self._read_timeout
                    )
                except asyncio.TimeoutError:
                    break
                except HttpError as error:
                    response = json_response(
                        {
                            "ok": False,
                            "error": error.message,
                            "code": error.code,
                        },
                        error.status,
                    )
                    writer.write(response.serialize(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:  # client closed the connection
                    break
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    self._active_requests += 1
                    try:
                        response = await self._handler(request)
                    finally:
                        self._active_requests -= 1
                except HttpError as error:
                    response = json_response(
                        {
                            "ok": False,
                            "error": error.message,
                            "code": error.code,
                        },
                        error.status,
                        headers=error.headers,
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 - last resort
                    response = json_response(
                        {
                            "ok": False,
                            "error": f"internal error: {error}",
                            "code": "internal",
                        },
                        500,
                    )
                writer.write(response.serialize(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.CancelledError, ConnectionError):
            # ConnectionError covers reset *and* broken-pipe: a peer
            # vanishing mid-write is routine, not a server fault.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> HttpRequest | None:
        """Parse one request off the stream (``None`` on clean EOF)."""
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionResetError) as error:
            raise HttpError(400, f"unreadable request line: {error}") from error
        if not request_line:
            return None
        if len(request_line) > MAX_REQUEST_LINE:
            raise HttpError(413, "request line too long")
        try:
            method, target, version = (
                request_line.decode("ascii").strip().split(" ", 2)
            )
        except (UnicodeDecodeError, ValueError) as error:
            raise HttpError(400, "malformed request line") from error
        if not version.startswith("HTTP/1."):
            raise HttpError(400, f"unsupported protocol {version!r}")

        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError as error:
                # One header line overflowed the stream reader's limit.
                raise HttpError(413, "header line too long") from error
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise HttpError(413, "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            try:
                name, _, value = line.decode("latin-1").partition(":")
            except UnicodeDecodeError as error:  # pragma: no cover
                raise HttpError(400, "undecodable header") from error
            headers[name.strip().lower()] = value.strip()

        body = b""
        length_text = headers.get("content-length")
        if length_text is not None and "transfer-encoding" in headers:
            # RFC 9112 §6.1: ambiguous framing, a smuggling vector.
            raise HttpError(
                400, "both Content-Length and Transfer-Encoding present"
            )
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError as error:
                raise HttpError(400, "invalid Content-Length") from error
            if length < 0:
                raise HttpError(400, "negative Content-Length")
            if length > MAX_BODY_BYTES:
                raise HttpError(413, "request body too large")
            if length:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError as error:
                    raise HttpError(400, "truncated request body") from error
        elif headers.get("transfer-encoding", "").lower() == "chunked":
            raise HttpError(400, "chunked request bodies are not supported")

        parts = urlsplit(target)
        return HttpRequest(
            method=method.upper(),
            path=unquote(parts.path) or "/",
            query=parse_qs(parts.query),
            headers=headers,
            body=body,
        )

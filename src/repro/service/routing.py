"""Consistent-hash routing of table fingerprints to worker slots.

The multi-worker supervisor keeps each worker's in-memory hot tier
effective by always sending work on the same table *content* to the
same worker slot: the L1 cache then concentrates that table's maps and
stage artifacts in one process instead of diluting them across all of
them.  Keys are content fingerprints (not names), the same identity
the cache tiers use — two names bound to identical data route
together, exactly like they share cache entries.

A classic hash ring with virtual nodes keeps the mapping stable under
membership change: when one of N slots is removed, only ~1/N of the
keyspace moves.  Slots are small integers (worker *slots*, not
processes — a restarted worker reoccupies its slot and, thanks to the
disk artifact tier, rewarms from what its predecessor persisted).
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _point(token: str) -> int:
    """A uniform 64-bit ring position for a token."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over integer worker slots.

    Parameters
    ----------
    slots:
        The worker slot ids (e.g. ``range(n_workers)``).
    replicas:
        Virtual nodes per slot; more replicas = smoother key spread.
    """

    def __init__(self, slots: range | list[int], replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self._replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, int] = {}
        self._slots: set[int] = set()
        for slot in slots:
            self.add(slot)

    @property
    def slots(self) -> tuple[int, ...]:
        """The live slots, ascending."""
        return tuple(sorted(self._slots))

    def add(self, slot: int) -> None:
        """Add a slot (idempotent)."""
        if slot in self._slots:
            return
        self._slots.add(slot)
        for replica in range(self._replicas):
            point = _point(f"slot:{slot}:{replica}")
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners[point] = slot

    def remove(self, slot: int) -> None:
        """Remove a slot (idempotent); its keyspace spills to neighbours."""
        if slot not in self._slots:
            return
        self._slots.discard(slot)
        for replica in range(self._replicas):
            point = _point(f"slot:{slot}:{replica}")
            index = bisect.bisect_left(self._points, point)
            if index < len(self._points) and self._points[index] == point:
                del self._points[index]
            self._owners.pop(point, None)

    def owner(self, key: str) -> int:
        """The slot owning ``key`` (clockwise successor on the ring)."""
        return self.owners(key, 1)[0]

    def owners(self, key: str, count: int) -> list[int]:
        """Up to ``count`` distinct slots for ``key``, preference order.

        The first entry is the owner; the rest are the clockwise
        successors — the failover targets a proxy tries when the owner
        is down.  Walking the ring (instead of re-hashing) keeps the
        fallback assignment as stable as the primary one.
        """
        if not self._points:
            raise LookupError("hash ring has no slots")
        point = _point(f"key:{key}")
        index = bisect.bisect_right(self._points, point)
        preference: list[int] = []
        for step in range(len(self._points)):
            slot = self._owners[self._points[(index + step) % len(self._points)]]
            if slot not in preference:
                preference.append(slot)
                if len(preference) >= count:
                    break
        return preference

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, slot: object) -> bool:
        return slot in self._slots

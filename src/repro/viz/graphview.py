"""Text rendering of the dependency graph (Figure 2).

Figure 2 of the paper draws the column dependency graph with its two
communities.  This renderer produces the text equivalent: an adjacency
summary grouped by detected community, plus a weight matrix heat-strip
for small graphs — deterministic output the demo can print and tests can
assert on.
"""

from __future__ import annotations

from repro.graph.dependency import DependencyGraph
from repro.graph.partition import threshold_components

__all__ = ["render_dependency_graph", "render_weight_matrix"]

#: Characters for the weight heat-strip, weakest to strongest.
_SHADES = " .:-=+*#%@"


def render_dependency_graph(
    graph: DependencyGraph,
    min_weight: float = 0.2,
    max_edges_per_node: int = 4,
) -> str:
    """The graph as community blocks with per-node strongest edges.

    Communities come from connected components above ``min_weight`` —
    the same visual grouping Figure 2 conveys with node placement.
    """
    communities = threshold_components(graph, min_weight=min_weight)
    lines = [
        f"DEPENDENCY GRAPH ({graph.n_columns} columns, "
        f"measure={graph.measure}, edges >= {min_weight:g})"
    ]
    for position, community in enumerate(communities):
        if len(community) == 1:
            continue
        lines.append(f"community {position}: {len(community)} columns")
        for column in community:
            neighbours = [
                (other, graph.weight(column, other))
                for other in community
                if other != column
                and graph.weight(column, other) >= min_weight
            ]
            neighbours.sort(key=lambda pair: -pair[1])
            rendered = ", ".join(
                f"{other} ({weight:.2f})"
                for other, weight in neighbours[:max_edges_per_node]
            )
            lines.append(f"  {column} -- {rendered}")
    isolated = [c for c in communities if len(c) == 1]
    if isolated:
        names = ", ".join(c[0] for c in isolated[:8])
        suffix = "…" if len(isolated) > 8 else ""
        lines.append(f"isolated: {names}{suffix}")
    return "\n".join(lines)


def render_weight_matrix(graph: DependencyGraph, max_columns: int = 20) -> str:
    """A heat-strip weight matrix for small graphs.

    Each cell is one character from a 10-step shade ramp; rows and
    columns are in graph order.  Graphs wider than ``max_columns`` are
    truncated (the matrix view is for Figure-2-sized graphs).
    """
    names = graph.columns[:max_columns]
    truncated = graph.n_columns > max_columns
    width = max(len(name) for name in names)
    lines = [
        "WEIGHT MATRIX" + (" (truncated)" if truncated else ""),
    ]
    header = " " * (width + 1) + "".join(str(i % 10) for i in range(len(names)))
    lines.append(header)
    for i, row_name in enumerate(names):
        cells = []
        for j in range(len(names)):
            weight = float(graph.weights[i, j])
            shade = _SHADES[
                min(int(weight * len(_SHADES)), len(_SHADES) - 1)
            ]
            cells.append(shade)
        lines.append(f"{row_name:>{width}} " + "".join(cells))
    legend = "  ".join(
        f"{_SHADES[i]}={i / len(_SHADES):.1f}" for i in (2, 5, 9)
    )
    lines.append(f"(shade ramp: {legend}…1.0)")
    return "\n".join(lines)

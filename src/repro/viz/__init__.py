"""Presentation layer: the D3/HTML client's stand-in.

The paper's client renders data maps with D3 (Figures 5–6).  Pixels are
out of scope here, but everything that *feeds* the pixels is in: a
slice-and-dice treemap layout (area ∝ tuple count, exactly the property
Figure 1 describes), deterministic ASCII renderings of the theme view and
map view, text histograms/scatter plots for the highlight inspectors, and
D3-ready JSON export.
"""

from repro.viz.charts import text_histogram, text_scatter
from repro.viz.export import export_map_json, export_themes_json
from repro.viz.graphview import render_dependency_graph, render_weight_matrix
from repro.viz.render import render_map, render_region_panel, render_theme_view
from repro.viz.treemap import Rect, treemap_layout

__all__ = [
    "Rect",
    "export_map_json",
    "export_themes_json",
    "render_dependency_graph",
    "render_map",
    "render_region_panel",
    "render_theme_view",
    "render_weight_matrix",
    "text_histogram",
    "text_scatter",
    "treemap_layout",
]

"""JSON export — the payloads the web tier ships to the D3 client.

In the paper's architecture the R engine hands maps to NodeJS, which
relays them to the browser as JSON.  These exporters produce those
payloads: a D3-hierarchy-shaped map document (with treemap geometry
attached, so the client needs no layout code) and a theme-list document
for the theme view.
"""

from __future__ import annotations

import json

from repro.core.datamap import DataMap
from repro.core.themes import ThemeSet
from repro.viz.treemap import treemap_layout

__all__ = ["export_map_json", "export_themes_json"]


def export_map_json(data_map: DataMap, indent: int | None = None) -> str:
    """The map as a JSON document: hierarchy + treemap rectangles.

    The shape follows D3's hierarchy conventions (``name``, ``value``,
    ``children``) so a ``d3.hierarchy`` call could consume it directly.
    """
    rectangles = treemap_layout(data_map)

    def node(region_dict: dict[str, object]) -> dict[str, object]:
        region_id = str(region_dict["id"])
        rect = rectangles[region_id]
        out: dict[str, object] = {
            "name": region_dict["label"],
            "id": region_id,
            "value": region_dict["n_rows"],
            "sql": region_dict["sql"],
            "rect": {
                "x": round(rect.x, 6),
                "y": round(rect.y, 6),
                "w": round(rect.width, 6),
                "h": round(rect.height, 6),
            },
        }
        for key in ("cluster", "silhouette", "exemplar", "n_rows_error"):
            if key in region_dict:
                out[key] = region_dict[key]
        if "children" in region_dict:
            out["children"] = [
                node(child)  # type: ignore[arg-type]
                for child in region_dict["children"]  # type: ignore[union-attr]
            ]
        return out

    payload = {
        "type": "blaeu.map",
        "columns": list(data_map.columns),
        "k": data_map.k,
        "n_rows": data_map.n_rows,
        "silhouette": round(data_map.silhouette, 4),
        "fidelity": round(data_map.fidelity, 4),
        "counts_status": data_map.counts_status,
        "root": node(data_map.root.to_dict()),
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def export_themes_json(themes: ThemeSet, indent: int | None = None) -> str:
    """The theme list as a JSON document for the theme view."""
    payload = {
        "type": "blaeu.themes",
        "silhouette": round(themes.silhouette, 4),
        "k_scores": {str(k): round(v, 4) for k, v in themes.k_scores.items()},
        "excluded_keys": list(themes.excluded_keys),
        "themes": [
            {
                "name": theme.name,
                "columns": list(theme.columns),
                "cohesion": round(theme.cohesion, 4),
            }
            for theme in themes
        ],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)

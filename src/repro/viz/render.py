"""ASCII renderings of the theme view and the map view (Figures 5–6).

Blaeu's two screens — the theme browser and the data map — are rendered
here as deterministic text, which demos print and tests assert on.
The map view shows the region hierarchy as an indented tree annotated
with tuple counts, shares and (for leaves) silhouettes; an optional bar
gives each leaf's area at a glance, preserving the paper's "area shows
the number of tuples" reading in one dimension.
"""

from __future__ import annotations

from repro.core.datamap import DataMap, Region
from repro.core.navigation import Highlight
from repro.core.themes import ThemeSet

__all__ = ["render_theme_view", "render_map", "render_region_panel"]

_BAR_WIDTH = 24


def render_theme_view(themes: ThemeSet, max_columns: int = 6) -> str:
    """The theme browser: one block per theme, columns listed under it."""
    lines: list[str] = ["THEMES", "======"]
    for position, theme in enumerate(themes):
        lines.append(
            f"[{position}] {theme.name}  "
            f"({theme.size} columns, cohesion {theme.cohesion:.2f})"
        )
        shown = theme.columns[:max_columns]
        for column in shown:
            lines.append(f"      - {column}")
        hidden = theme.size - len(shown)
        if hidden > 0:
            lines.append(f"      … and {hidden} more")
    lines.append(
        f"(partition silhouette {themes.silhouette:.2f}; "
        f"{len(themes.excluded_keys)} key column(s) excluded)"
    )
    return "\n".join(lines)


def render_map(data_map: DataMap, show_bars: bool = True) -> str:
    """The map view: the region hierarchy as an indented tree."""
    lines: list[str] = [
        (
            f"DATA MAP over {', '.join(data_map.columns[:4])}"
            + ("…" if len(data_map.columns) > 4 else "")
        ),
        (
            f"{data_map.n_rows} tuples | k={data_map.k} | "
            f"silhouette {data_map.silhouette:.2f} | "
            f"fidelity {data_map.fidelity:.2f} | "
            f"sample {data_map.sample_size}"
            + (
                f" | counts {data_map.counts_status}"
                if data_map.counts_status != "exact"
                else ""
            )
        ),
        "",
    ]
    _render_region(data_map.root, data_map.n_rows, lines, show_bars)
    return "\n".join(lines)


def _render_region(
    region: Region,
    total: int,
    lines: list[str],
    show_bars: bool,
) -> None:
    indent = "  " * region.depth
    share = region.fraction_of(total)
    parts = [f"{indent}[{region.region_id}] {region.label}"]
    if region.n_rows_error is not None:
        parts.append(f"(~{region.n_rows}±{region.n_rows_error} tuples, {share:5.1%})")
    else:
        parts.append(f"({region.n_rows} tuples, {share:5.1%})")
    if region.is_leaf:
        if region.silhouette is not None:
            parts.append(f"s={region.silhouette:.2f}")
        if show_bars:
            filled = round(share * _BAR_WIDTH)
            parts.append("▇" * max(filled, 1 if region.n_rows else 0))
    lines.append(" ".join(parts))
    for child in region.children:
        _render_region(child, total, lines, show_bars)


def render_region_panel(highlight: Highlight) -> str:
    """The left-hand information panel of the map view (Figure 6).

    Shows the highlighted region's size, a bounded tuple preview and the
    univariate summaries the prototype's inspector charts are built from.
    """
    lines = [
        f"REGION {highlight.region_id}",
        f"{highlight.n_rows} tuples | columns: {', '.join(highlight.columns)}",
        "",
    ]
    if highlight.preview:
        lines.append("preview:")
        for row in highlight.preview:
            rendered = ", ".join(
                f"{k}={_fmt(v)}" for k, v in row.items()
            )
            lines.append(f"  {rendered}")
    for name, stats in highlight.numeric_summaries.items():
        lines.append(
            f"{name}: min {_fmt(stats['min'])}  median {_fmt(stats['median'])}  "
            f"mean {_fmt(stats['mean'])}  max {_fmt(stats['max'])}"
        )
    for name, counts in highlight.category_counts.items():
        top = list(counts.items())[:5]
        rendered = ", ".join(f"{label} ({count})" for label, count in top)
        lines.append(f"{name}: {rendered}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "∅"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)

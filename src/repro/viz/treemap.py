"""Slice-and-dice treemap layout for data maps.

"The area of the leaves shows the number of tuples covered" (paper §2).
This module computes the rectangle geometry: the root region gets the
unit canvas and every internal region splits its rectangle among its
children proportionally to tuple counts, alternating horizontal and
vertical cuts by depth (the classic slice-and-dice scheme, which matches
the nested-boxes look of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.datamap import DataMap, Region

__all__ = ["Rect", "treemap_layout"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in layout coordinates."""

    x: float
    y: float
    width: float
    height: float

    @property
    def area(self) -> float:
        """Width × height."""
        return self.width * self.height

    def contains(self, x: float, y: float) -> bool:
        """Whether the point lies inside (half-open on the far edges)."""
        return (
            self.x <= x < self.x + self.width
            and self.y <= y < self.y + self.height
        )


def treemap_layout(
    data_map: DataMap,
    width: float = 1.0,
    height: float = 1.0,
) -> dict[str, Rect]:
    """Rectangle per region id, slice-and-dice, area ∝ tuple count.

    Regions with zero tuples receive zero-area rectangles (they remain
    addressable but invisible).  The root rectangle is
    ``Rect(0, 0, width, height)``.
    """
    if width <= 0 or height <= 0:
        raise ValueError("canvas dimensions must be positive")
    out: dict[str, Rect] = {}
    _layout(data_map.root, Rect(0.0, 0.0, width, height), out, horizontal=True)
    return out


def _layout(
    region: Region,
    rect: Rect,
    out: dict[str, Rect],
    horizontal: bool,
) -> None:
    out[region.region_id] = rect
    if region.is_leaf:
        return
    total = sum(child.n_rows for child in region.children)
    offset = 0.0
    for child in region.children:
        share = child.n_rows / total if total > 0 else 0.0
        if horizontal:
            child_rect = Rect(
                x=rect.x + offset * rect.width,
                y=rect.y,
                width=share * rect.width,
                height=rect.height,
            )
            offset += share
        else:
            child_rect = Rect(
                x=rect.x,
                y=rect.y + offset * rect.height,
                width=rect.width,
                height=share * rect.height,
            )
            offset += share
        _layout(child, child_rect, out, horizontal=not horizontal)

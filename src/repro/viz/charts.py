"""Text histograms and scatter plots — the highlight inspectors.

"For more details, our prototype provides classic univariate and
bivariate visualization methods, such as histograms and scatter-plots"
(paper §2).  These render to fixed-width text, deterministic under a
fixed input, so examples print them and tests assert on their shape.
"""

from __future__ import annotations

import numpy as np

from repro.table.column import CategoricalColumn, NumericColumn

__all__ = ["text_histogram", "text_scatter"]


def text_histogram(
    column: NumericColumn | CategoricalColumn,
    n_bins: int = 10,
    width: int = 40,
) -> str:
    """A horizontal-bar histogram of one column.

    Numeric columns are binned into ``n_bins`` equal-width intervals;
    categorical columns get one bar per label (most frequent first).
    Missing cells are counted on a separate ∅ bar when present.
    """
    if width < 1:
        raise ValueError("width must be positive")
    lines = [f"{column.name} ({len(column)} rows)"]
    if isinstance(column, NumericColumn):
        present = column.present_values()
        if present.size == 0:
            return "\n".join(lines + ["  (all values missing)"])
        low, high = float(present.min()), float(present.max())
        if low == high:
            edges = np.asarray([low, high])
            counts = np.asarray([present.size])
        else:
            counts, edges = np.histogram(present, bins=n_bins)
        top = max(int(counts.max()), 1)
        for b, count in enumerate(counts):
            bar = "█" * round(width * count / top)
            lines.append(
                f"  [{edges[b]:>10.3g}, {edges[b + 1]:>10.3g}) "
                f"{bar} {count}"
            )
    else:
        counts = column.value_counts()
        if not counts:
            return "\n".join(lines + ["  (all values missing)"])
        top = max(counts.values())
        for label, count in list(counts.items())[:n_bins]:
            bar = "█" * round(width * count / top)
            lines.append(f"  {label[:18]:<18} {bar} {count}")
    if column.n_missing:
        lines.append(f"  {'∅ missing':<18} {column.n_missing}")
    return "\n".join(lines)


def text_scatter(
    x: NumericColumn,
    y: NumericColumn,
    width: int = 50,
    height: int = 18,
) -> str:
    """A character-grid scatter plot of two numeric columns.

    Cells hold ``·`` for 1 point, ``o`` for a few, ``●`` for many; rows
    with a missing value in either column are dropped.
    """
    if width < 2 or height < 2:
        raise ValueError("scatter grid must be at least 2x2")
    both = x.present_mask & y.present_mask
    xs = x.values[both]
    ys = y.values[both]
    header = f"{y.name} vs {x.name} ({xs.size} points)"
    if xs.size == 0:
        return header + "\n  (no complete pairs)"

    x_low, x_high = float(xs.min()), float(xs.max())
    y_low, y_high = float(ys.min()), float(ys.max())
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0
    grid = np.zeros((height, width), dtype=np.int64)
    cols = np.minimum(((xs - x_low) / x_span * (width - 1)).astype(int), width - 1)
    rows = np.minimum(((ys - y_low) / y_span * (height - 1)).astype(int), height - 1)
    np.add.at(grid, (rows, cols), 1)

    lines = [header]
    for r in range(height - 1, -1, -1):  # y grows upward
        row_chars = []
        for c in range(width):
            count = grid[r, c]
            if count == 0:
                row_chars.append(" ")
            elif count == 1:
                row_chars.append("·")
            elif count <= 4:
                row_chars.append("o")
            else:
                row_chars.append("●")
        lines.append("|" + "".join(row_chars))
    lines.append("+" + "-" * width)
    lines.append(f" x: [{x_low:.3g}, {x_high:.3g}]  y: [{y_low:.3g}, {y_high:.3g}]")
    return "\n".join(lines)

"""Speculative prefetch: build the user's likely next map before the click.

The multi-worker service shares one :class:`~repro.service.cache.
TieredCache`; the recommendation engine (:mod:`repro.guide.recommend`)
knows — deterministically — which actions it will rank first.  Put
together: after each served map/theme response the scheduler plans the
top-N suggested actions and builds their artifacts through the staged
pipeline as **low-priority background jobs**, so the likely next
request is a warm hit for *every* worker sharing the disk tier.

Three invariants keep speculation harmless:

* **never displace foreground** — background jobs are admitted only
  onto idle pool threads (``WorkerPool.run(..., background=True)``)
  and retried with a short backoff instead of queueing;
* **bounded concurrency** — at most ``jobs`` speculative builds run at
  once, however many actions are planned;
* **cancel-on-navigate** — each scope (a session id or a table) carries
  a generation counter; a new speculation or an explicit
  :meth:`PrefetchScheduler.cancel` bumps it, and stale speculations
  stop before their next build.  A build already running on a worker
  thread finishes (threads are not interruptible) — but its result
  still lands in the shared cache, so even a "wasted" speculation warms
  something.

Every speculation is observable: ``blaeu_guide_prefetch_*`` counters
and ``guide.plan`` / ``guide.prefetch`` trace spans.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.guide.recommend import (
    Suggestion,
    suggest_actions,
    suggestion_request,
)
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.resilience.deadline import (
    DeadlineExceeded,
    clear_deadline,
    deadline_scope,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import Blaeu
    from repro.core.navigation import Explorer
    from repro.server.session import SessionManager
    from repro.service.pool import WorkerPool

__all__ = [
    "PrefetchAction",
    "PrefetchScheduler",
    "plan_session",
    "plan_table",
    "prefetch_actions",
]

#: Seconds to wait before re-offering a background job to a busy pool.
_BACKOFF_SECONDS = 0.02

#: Give up on one speculative build after this many saturated offers.
_MAX_OFFERS = 50


@dataclass(frozen=True)
class PrefetchAction:
    """One planned speculative build: a label and a zero-arg thunk.

    The thunk runs on a pool thread and builds through the shared
    :class:`~repro.core.pipeline.MapBuilder`, so the artifact lands in
    the shared cache under exactly the key foreground navigation would
    look up (cache-managed builds are key-seeded — the result is
    bit-identical to the foreground build it pre-empts).
    """

    label: str
    build: Callable[[], object]


def _resolve_actions(
    explorer: "Explorer",
    suggestions: list[Suggestion],
    data_map,
    columns: tuple[str, ...],
    selection,
) -> list[PrefetchAction]:
    """Turn ranked suggestions into build thunks over the shared builder."""
    themes = explorer.themes()
    builder = explorer.map_builder
    table = explorer.table
    config = explorer.config
    out: list[PrefetchAction] = []
    for suggestion in suggestions:
        try:
            request_selection, request_columns, k = suggestion_request(
                suggestion, themes, data_map, columns, selection
            )
        except (KeyError, ValueError):
            continue

        def build(
            sel=request_selection, cols=request_columns, forced_k=k
        ) -> object:
            return builder.build(
                table, cols, config=config, selection=sel, k=forced_k
            )

        out.append(
            PrefetchAction(
                label=f"{suggestion.action}:{suggestion.target}", build=build
            )
        )
    return out


def prefetch_actions(
    explorer: "Explorer", suggestions: list[Suggestion]
) -> list[PrefetchAction]:
    """Resolve ranked suggestions into speculative build thunks."""
    if explorer.depth > 0:
        state = explorer.state
        data_map, columns, selection = state.map, state.columns, state.selection
    else:
        data_map, columns, selection = None, (), None
    return _resolve_actions(explorer, suggestions, data_map, columns, selection)


def plan_session(
    manager: "SessionManager", session_id: str, top_n: int
) -> Callable[[], list[PrefetchAction]]:
    """A planner over one live server session's current state.

    Runs on a pool thread.  The session may close or navigate while the
    plan runs — a vanished session plans nothing, and stale plans are
    discarded by the scheduler's generation check before any build.
    """

    def planner() -> list[PrefetchAction]:
        explorer = manager.peek(session_id)
        if explorer is None:
            return []
        suggestions = suggest_actions(explorer, limit=top_n)
        return prefetch_actions(explorer, suggestions)

    return planner


def plan_table(
    engine: "Blaeu",
    table_name: str,
    columns: tuple[str, ...] | None,
    theme: str | int | None,
    k: int | None,
    top_n: int,
) -> Callable[[], list[PrefetchAction]]:
    """A planner for the stateless per-table map endpoint.

    Resolves the served request's column set (explicit ``columns``, a
    ``theme`` reference, or the table's first theme — the endpoint's
    own defaulting) and recreates the just-served state through the
    shared builder (a cache hit — the foreground request stored the map
    moments ago), so the endpoint needs no session to speculate.  Runs
    entirely on a pool thread.
    """

    def planner() -> list[PrefetchAction]:
        from repro.guide.recommend import score_state
        from repro.table.predicates import Everything

        if columns:
            request_columns = tuple(columns)
        else:
            themes = engine.themes(table_name)
            if theme is None:
                resolved = themes[0]
            elif isinstance(theme, int):
                resolved = themes[theme]
            else:
                resolved = themes.theme(theme)
            request_columns = tuple(resolved.columns)
        explorer = engine.explore(table_name)
        data_map = explorer.map_builder.build(
            explorer.table,
            request_columns,
            config=explorer.config,
            k=k,
        )
        selection = Everything()
        suggestions = score_state(
            explorer.table,
            explorer.config,
            explorer.themes(),
            data_map,
            request_columns,
            selection,
            limit=top_n,
        )
        return _resolve_actions(
            explorer, suggestions, data_map, request_columns, selection
        )

    return planner


class PrefetchScheduler:
    """Plans and runs speculative builds through a shared worker pool.

    Parameters
    ----------
    pool:
        The service's :class:`~repro.service.pool.WorkerPool`; all
        speculative work goes through it with ``background=True``.
    top_n:
        How many ranked actions each speculation warms.
    jobs:
        Maximum concurrent speculative builds (a semaphore, on top of
        the pool's own idle-thread admission).
    deadline:
        Per-job budget in seconds for each speculative plan or build.
        Speculations never inherit the foreground request's deadline
        (``asyncio`` tasks copy the spawning context, so without care a
        background build would ride — and then outlive — the request's
        budget); instead each pool job gets its own short deadline so a
        pathological build releases its pool thread at the next stage
        checkpoint instead of holding it indefinitely.  ``None``
        disables the budget.
    """

    def __init__(
        self,
        pool: "WorkerPool",
        top_n: int = 3,
        jobs: int = 1,
        deadline: float | None = 30.0,
    ) -> None:
        if top_n < 1:
            raise ValueError("top_n must be at least 1")
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive when set")
        self._pool = pool
        self._top_n = top_n
        self._deadline = deadline
        self._semaphore = asyncio.Semaphore(jobs)
        self._generations: dict[str, int] = {}
        self._tasks: set[asyncio.Task] = set()
        self._closed = False
        self._scheduled = 0
        self._completed = 0
        self._cancelled = 0
        self._rejected = 0
        self._errors = 0
        self._deadline_exceeded = 0

    # ------------------------------------------------------------------
    # Control surface
    # ------------------------------------------------------------------

    def speculate(
        self, scope: str, planner: Callable[[], list[PrefetchAction]]
    ) -> None:
        """Plan and warm the top actions for ``scope`` (fire-and-forget).

        Implicitly cancels the scope's previous speculation: the user
        navigated, so whatever was planned for the old state is stale.
        Must be called from the event loop thread.
        """
        if self._closed:
            return
        generation = self._bump(scope)
        task = asyncio.get_running_loop().create_task(
            self._speculate(scope, generation, planner)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def cancel(self, scope: str) -> None:
        """Mark every in-flight speculation for ``scope`` stale."""
        self._bump(scope)

    async def drain(self) -> None:
        """Wait until every in-flight speculation has finished.

        Test and bench quiescence — foreground code never calls this.
        """
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def aclose(self) -> None:
        """Stop speculating and wait for in-flight tasks to wind down."""
        self._closed = True
        for scope in list(self._generations):
            self._bump(scope)
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    def stats(self) -> dict[str, int]:
        """Point-in-time speculation counters (all monotonic)."""
        return {
            "scheduled": self._scheduled,
            "completed": self._completed,
            "cancelled": self._cancelled,
            "rejected": self._rejected,
            "errors": self._errors,
            "deadline_exceeded": self._deadline_exceeded,
            "in_flight": len(self._tasks),
        }

    # ------------------------------------------------------------------
    # Internals (event-loop thread only, except the pool thunks)
    # ------------------------------------------------------------------

    def _bump(self, scope: str) -> int:
        self._generations[scope] = self._generations.get(scope, 0) + 1
        return self._generations[scope]

    def _fresh(self, scope: str, generation: int) -> bool:
        return not self._closed and self._generations.get(scope) == generation

    async def _speculate(
        self,
        scope: str,
        generation: int,
        planner: Callable[[], list[PrefetchAction]],
    ) -> None:
        # This task was created from a request handler, so it carries a
        # *copy* of the request's context — including any request
        # deadline, which may already be spent by the time speculation
        # runs.  Background work budgets itself per job instead.
        clear_deadline()
        metrics = get_metrics()
        with get_tracer().span("guide.plan") as span:
            if span.enabled:
                span.set("scope", scope)
            actions = await self._offer(scope, generation, planner)
        if actions is None:
            return
        for action in actions[: self._top_n]:
            if not self._fresh(scope, generation):
                self._cancelled += 1
                metrics.increment("blaeu_guide_prefetch_cancelled_total")
                return
            await self._prefetch(scope, generation, action)

    async def _prefetch(
        self, scope: str, generation: int, action: PrefetchAction
    ) -> None:
        metrics = get_metrics()
        self._scheduled += 1
        metrics.increment("blaeu_guide_prefetch_scheduled_total")
        async with self._semaphore:
            with get_tracer().span("guide.prefetch") as span:
                if span.enabled:
                    span.set("scope", scope)
                    span.set("action", action.label)
                result = await self._offer(scope, generation, action.build)
            if result is None:
                return
            self._completed += 1
            metrics.increment("blaeu_guide_prefetch_completed_total")

    async def _offer(
        self, scope: str, generation: int, fn: Callable[[], object]
    ) -> object | None:
        """Run ``fn`` as a background pool job, backing off while busy.

        Returns ``None`` (and counts why) instead of raising: a stale
        generation counts as cancelled, a persistently saturated pool as
        rejected, a shut-down pool as silent, anything else as an error.
        """
        # Imported here, not at module level: the service layer imports
        # this module, so a top-level import of repro.service would be
        # circular.
        from repro.service.pool import PoolSaturatedError

        metrics = get_metrics()
        for _ in range(_MAX_OFFERS):
            if not self._fresh(scope, generation):
                self._cancelled += 1
                metrics.increment("blaeu_guide_prefetch_cancelled_total")
                return None
            try:
                # Each job gets its own short deadline: ``pool.run``
                # copies the current context onto the worker thread, so
                # the stage checkpoints inside the build see it and the
                # pool slot is released at the next stage boundary.
                with deadline_scope(self._deadline):
                    result = await self._pool.run(fn, background=True)
            except PoolSaturatedError:
                await asyncio.sleep(_BACKOFF_SECONDS)
                continue
            except asyncio.CancelledError:
                raise
            except DeadlineExceeded:
                # A speculative build outliving its budget is a
                # cancellation, not a failure: the pool thread was
                # reclaimed, which is exactly the invariant we bought.
                self._deadline_exceeded += 1
                metrics.increment("blaeu_guide_prefetch_deadline_total")
                return None
            except RuntimeError as error:
                if "shut down" in str(error):
                    # Pool shut down underneath us: service is stopping.
                    return None
                self._errors += 1
                metrics.increment("blaeu_guide_prefetch_errors_total")
                return None
            except Exception:
                self._errors += 1
                metrics.increment("blaeu_guide_prefetch_errors_total")
                return None
            return result if result is not None else ()
        self._rejected += 1
        metrics.increment("blaeu_guide_prefetch_rejected_total")
        return None

"""Navigation traces: record real click streams, replay them in benches.

Prefetch effectiveness is only measurable against a *realistic* action
sequence — synthetic uniform-random navigation over-rewards any cache
and under-rewards ranking quality.  A :class:`TraceRecorder` attaches
to one or more :class:`~repro.core.navigation.Explorer` sessions
(observer hook, zero cost when detached) and records every completed
action as a ``(session, action, target, fingerprint)`` step; the
resulting :class:`NavigationTrace` round-trips through JSONL so traces
can be checked in next to bench baselines, and :func:`replay_trace`
drives a fresh explorer through the same steps — with or without a
prefetcher running — to compare cache hit rates on identical work.

The table *fingerprint* is recorded per step so a replayer can refuse
to replay a trace against different data (the cache keys would never
match and the measured hit rate would be meaningless).
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.navigation import Explorer

__all__ = [
    "NavigationTrace",
    "TraceRecorder",
    "TraceStep",
    "replay_trace",
]

#: Actions a recorded step may carry (the Explorer observer vocabulary).
ACTIONS = (
    "open_theme",
    "open_columns",
    "zoom",
    "project",
    "project_columns",
    "rollback",
    "goto",
)


@dataclass(frozen=True)
class TraceStep:
    """One recorded navigation action."""

    session: str
    action: str
    target: str
    fingerprint: str

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown trace action {self.action!r}; "
                f"expected one of {list(ACTIONS)}"
            )


@dataclass(frozen=True)
class NavigationTrace:
    """An ordered sequence of recorded steps (possibly many sessions)."""

    steps: tuple[TraceStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def sessions(self) -> tuple[str, ...]:
        """Distinct session ids, in order of first appearance."""
        seen: dict[str, None] = {}
        for step in self.steps:
            seen.setdefault(step.session, None)
        return tuple(seen)

    def for_session(self, session: str) -> "NavigationTrace":
        """The sub-trace of one session, order preserved."""
        return NavigationTrace(
            steps=tuple(s for s in self.steps if s.session == session)
        )

    def save(self, path: str | Path) -> Path:
        """Write the trace as JSONL (one step per line); returns the path."""
        path = Path(path)
        lines = [json.dumps(asdict(step), sort_keys=True) for step in self.steps]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "NavigationTrace":
        """Read a JSONL trace written by :meth:`save`."""
        steps: list[TraceStep] = []
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            steps.append(
                TraceStep(
                    session=str(raw["session"]),
                    action=str(raw["action"]),
                    target=str(raw["target"]),
                    fingerprint=str(raw["fingerprint"]),
                )
            )
        return cls(steps=tuple(steps))


class TraceRecorder:
    """Collects steps from live explorer sessions (thread-safe).

    One recorder can observe many sessions at once — the service
    attaches it per session id, the CLI shell under a fixed id.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._steps: list[TraceStep] = []

    def record(
        self, session: str, action: str, target: str, fingerprint: str
    ) -> None:
        """Append one step (validated by :class:`TraceStep`)."""
        step = TraceStep(
            session=session,
            action=action,
            target=target,
            fingerprint=fingerprint,
        )
        with self._lock:
            self._steps.append(step)

    def attach(
        self, explorer: "Explorer", session: str
    ) -> Callable[[], None]:
        """Observe one explorer; returns a detach callable."""
        fingerprint = explorer.table.fingerprint()

        def observer(action: str, target: str) -> None:
            self.record(session, action, target, fingerprint)

        explorer.add_observer(observer)

        def detach() -> None:
            explorer.remove_observer(observer)

        return detach

    def __len__(self) -> int:
        with self._lock:
            return len(self._steps)

    def trace(self) -> NavigationTrace:
        """A snapshot of everything recorded so far."""
        with self._lock:
            return NavigationTrace(steps=tuple(self._steps))


def replay_trace(
    explorer: "Explorer",
    trace: NavigationTrace,
    session: str | None = None,
    on_step: Callable[[TraceStep], None] | None = None,
) -> int:
    """Drive ``explorer`` through a recorded trace; returns steps applied.

    With ``session``, only that session's steps are replayed.  Every
    step's fingerprint must match the explorer's table — replaying a
    trace against different data would measure nothing.  ``on_step``
    (called *after* each applied action) is the bench's hook for
    per-step measurements.
    """
    fingerprint = explorer.table.fingerprint()
    applied = 0
    for step in trace:
        if session is not None and step.session != session:
            continue
        if step.fingerprint != fingerprint:
            raise ValueError(
                f"trace step {step.action!r} was recorded against table "
                f"fingerprint {step.fingerprint[:12]}…, but the explorer's "
                f"table has {fingerprint[:12]}…"
            )
        _apply(explorer, step)
        applied += 1
        if on_step is not None:
            on_step(step)
    return applied


def _apply(explorer: "Explorer", step: TraceStep) -> None:
    if step.action == "open_theme":
        explorer.open_theme(step.target)
    elif step.action == "open_columns":
        explorer.open_columns(tuple(step.target.split(",")))
    elif step.action == "zoom":
        explorer.zoom(step.target)
    elif step.action == "project":
        explorer.project(step.target)
    elif step.action == "project_columns":
        explorer.project_columns(tuple(step.target.split(",")))
    elif step.action == "rollback":
        explorer.rollback()
    elif step.action == "goto":
        explorer.goto(int(step.target))
    else:  # pragma: no cover - TraceStep validates on construction
        raise ValueError(f"unknown trace action {step.action!r}")

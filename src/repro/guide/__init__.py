"""Guided exploration: action recommendation + speculative prefetch.

The guide layer closes the loop the paper leaves open: Blaeu *navigates*
(zoom, project, rollback) but never *suggests*.  Here the system ranks
the candidate next actions from signals it already computes
(:mod:`repro.guide.recommend`), records and replays real navigation
streams (:mod:`repro.guide.trace`), and — because the ranked list is
deterministic — speculatively builds the top suggestions into the
shared cache through idle pool slots (:mod:`repro.guide.prefetch`), so
the user's likely next click is a warm hit.
"""

from repro.guide.prefetch import (
    PrefetchAction,
    PrefetchScheduler,
    plan_session,
    plan_table,
    prefetch_actions,
)
from repro.guide.recommend import (
    MAX_INSIGHT_ROWS,
    Suggestion,
    initial_suggestions,
    score_state,
    suggest_actions,
    suggestion_request,
)
from repro.guide.trace import (
    NavigationTrace,
    TraceRecorder,
    TraceStep,
    replay_trace,
)

__all__ = [
    "MAX_INSIGHT_ROWS",
    "NavigationTrace",
    "PrefetchAction",
    "PrefetchScheduler",
    "Suggestion",
    "TraceRecorder",
    "TraceStep",
    "initial_suggestions",
    "plan_session",
    "plan_table",
    "prefetch_actions",
    "replay_trace",
    "score_state",
    "suggest_actions",
    "suggestion_request",
]

"""Action recommendation: *where should the exploration go next?*

Blaeu navigates but never suggests — the analyst stares at a map and
picks a region, a theme, a k.  Follow-up systems (Clustrophile 2,
Clusters-in-Focus) showed that ranked guidance over the exploration
space is what turns a navigation tool into an assistant.  This module
enumerates the candidate next actions from one exploration state and
scores them **only with signals the system already computes**:

* ``zoom`` into a leaf region — scored by the region's insight
  divergence (top numeric effect size / categorical lift from
  :func:`~repro.core.insights.region_insights`), its clustering
  uncertainty (low per-region silhouette: heterogeneous regions hide
  sub-structure worth re-clustering), and its size fraction;
* ``project`` onto another theme — scored by the mean dependency-graph
  edge weight between the active columns and the candidate theme's
  columns (high cross-NMI: the new axes are *related* to what the user
  is looking at, not a topic change) plus the theme's own cohesion;
* ``recluster`` with a different k — scored by how poorly the current
  k fits (low map silhouette) discounted by the distance |k' − k|;
* ``open_theme`` (before the first map) — scored by cohesion weighted
  by relative theme size.

Every score is deterministic for a fixed (table content, config,
exploration state): nothing here reads the cache, the clock or a
session RNG, so the ranked list is identical across cache warmth and
worker counts — which is what makes it safe to *prefetch* the top
suggestions (:mod:`repro.guide.prefetch`) without changing what the
user would have been recommended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import BlaeuConfig
from repro.core.datamap import DataMap
from repro.core.insights import InsightReport, region_insights
from repro.core.themes import ThemeSet
from repro.table.predicates import And, Everything, Predicate
from repro.table.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.navigation import Explorer

__all__ = [
    "MAX_INSIGHT_ROWS",
    "Suggestion",
    "initial_suggestions",
    "score_state",
    "suggest_actions",
    "suggestion_request",
]

#: Selections larger than this skip the per-region insight pass when
#: scoring zoom candidates (silhouette + size still rank them).  The
#: cutoff depends only on the map's row count, so ranking stays
#: deterministic for a fixed state.
MAX_INSIGHT_ROWS = 50_000

#: Weights of the zoom score components (divergence, uncertainty, size).
_ZOOM_WEIGHTS = (0.45, 0.30, 0.25)


@dataclass(frozen=True)
class Suggestion:
    """One ranked candidate next action.

    ``action`` is one of ``open_theme`` / ``zoom`` / ``project`` /
    ``recluster``; ``target`` identifies what to act on (theme name,
    region id, or k rendered as a string).  ``score`` is in [0, 1] and
    comparable across action kinds; ``reason`` is the one-line
    explanation shown to the user.
    """

    action: str
    target: str
    score: float
    reason: str

    def describe(self) -> str:
        """One human-readable line for CLI output."""
        return f"{self.action} {self.target}  [{self.score:.3f}]  {self.reason}"


def _clip01(value: float) -> float:
    if not np.isfinite(value):
        return 0.0
    return float(min(1.0, max(0.0, value)))


def _divergence(report: InsightReport) -> float:
    """The region's strongest contrast, squashed into [0, 1].

    Numeric effects are Cohen's d (|d| ≈ 2 is already a dramatic
    separation); categorical effects are |log2(lift)| on the same
    scale.  The strongest of either, divided by 2 and clipped.
    """
    top = 0.0
    for insight in report.numeric:
        top = max(top, abs(insight.effect_size))
    for insight in report.categories:
        top = max(top, abs(float(np.log2(max(insight.lift, 1e-9)))))
    return _clip01(top / 2.0)


def initial_suggestions(themes: ThemeSet, limit: int = 5) -> list[Suggestion]:
    """Ranked ``open_theme`` suggestions before the first map.

    Cohesion says the theme's columns genuinely move together; the
    square-rooted size fraction prefers themes that cover more of the
    table without letting a giant incoherent theme win on bulk alone.
    """
    total = sum(theme.size for theme in themes) or 1
    out = [
        Suggestion(
            action="open_theme",
            target=theme.name,
            score=_clip01(
                theme.cohesion * float(np.sqrt(theme.size / total))
            ),
            reason=(
                f"cohesion {theme.cohesion:.2f} over "
                f"{theme.size} columns"
            ),
        )
        for theme in themes
    ]
    return _ranked(out, limit)


def score_state(
    table: Table,
    config: BlaeuConfig,
    themes: ThemeSet,
    data_map: DataMap,
    columns: tuple[str, ...],
    selection: Predicate,
    limit: int = 5,
    max_insight_rows: int = MAX_INSIGHT_ROWS,
) -> list[Suggestion]:
    """Ranked next actions from one (selection, columns, map) state."""
    suggestions: list[Suggestion] = []
    suggestions.extend(
        _zoom_candidates(table, config, data_map, selection, max_insight_rows)
    )
    suggestions.extend(_project_candidates(themes, columns))
    suggestions.extend(_recluster_candidates(config, data_map))
    return _ranked(suggestions, limit)


def suggest_actions(
    explorer: "Explorer",
    limit: int = 5,
    max_insight_rows: int = MAX_INSIGHT_ROWS,
) -> list[Suggestion]:
    """Ranked next actions for an explorer session.

    Before the first map the candidates are the themes to open;
    afterwards they are zooms, projections and re-clusterings of the
    current state.  Purely a read: no map is built, no state changes,
    and the ranking is deterministic for a fixed (table, config, state).
    """
    if explorer.depth == 0:
        return initial_suggestions(explorer.themes(), limit=limit)
    state = explorer.state
    return score_state(
        explorer.table,
        explorer.config,
        explorer.themes(),
        state.map,
        state.columns,
        state.selection,
        limit=limit,
        max_insight_rows=max_insight_rows,
    )


def suggestion_request(
    suggestion: Suggestion,
    themes: ThemeSet,
    data_map: DataMap | None,
    columns: tuple[str, ...],
    selection: Predicate | None,
) -> tuple[Predicate, tuple[str, ...], int | None]:
    """The build request ``(selection, columns, k)`` a suggestion implies.

    Mirrors exactly what :class:`~repro.core.navigation.Explorer` would
    pass to :meth:`~repro.core.pipeline.MapBuilder.build` if the user
    took the action — including ``And.of`` selection composition — so a
    speculative build lands under the *same* cache key the foreground
    navigation would look up.
    """
    if suggestion.action == "open_theme":
        return Everything(), themes.theme(suggestion.target).columns, None
    if selection is None or data_map is None:
        raise ValueError(
            f"suggestion {suggestion.action!r} needs an active state"
        )
    if suggestion.action == "zoom":
        region = data_map.region(suggestion.target)
        return And.of(selection, region.predicate), tuple(columns), None
    if suggestion.action == "project":
        return selection, themes.theme(suggestion.target).columns, None
    if suggestion.action == "recluster":
        return selection, tuple(columns), int(suggestion.target)
    raise ValueError(f"unknown suggestion action {suggestion.action!r}")


# ----------------------------------------------------------------------
# Candidate enumeration
# ----------------------------------------------------------------------


def _zoom_candidates(
    table: Table,
    config: BlaeuConfig,
    data_map: DataMap,
    selection: Predicate,
    max_insight_rows: int,
) -> list[Suggestion]:
    leaves = [
        region
        for region in data_map.leaves()
        if config.min_zoom_rows <= region.n_rows < data_map.n_rows
    ]
    if not leaves:
        return []
    selection_rows = None
    if data_map.n_rows <= max_insight_rows:
        selection_rows = table.select(selection)
    w_div, w_sil, w_size = _ZOOM_WEIGHTS
    out: list[Suggestion] = []
    for region in leaves:
        divergence = 0.0
        if selection_rows is not None:
            report = region_insights(selection_rows, region.predicate)
            divergence = _divergence(report)
        uncertainty = 1.0 - _clip01(region.silhouette)
        size = region.n_rows / max(data_map.n_rows, 1)
        score = w_div * divergence + w_sil * uncertainty + w_size * size
        out.append(
            Suggestion(
                action="zoom",
                target=region.region_id,
                score=_clip01(score),
                reason=(
                    f"{region.label}: divergence {divergence:.2f}, "
                    f"silhouette {region.silhouette:.2f}, "
                    f"{region.n_rows} rows"
                ),
            )
        )
    return out


def _project_candidates(
    themes: ThemeSet, columns: tuple[str, ...]
) -> list[Suggestion]:
    graph = themes.graph
    known = set(graph.columns)
    active = set(columns)
    out: list[Suggestion] = []
    for theme in themes:
        if set(theme.columns) == active:
            continue
        weights = [
            graph.weight(a, b)
            for a in columns
            for b in theme.columns
            if a != b and a in known and b in known
        ]
        cross = float(np.mean(weights)) if weights else 0.0
        score = 0.6 * _clip01(cross) + 0.4 * _clip01(theme.cohesion)
        out.append(
            Suggestion(
                action="project",
                target=theme.name,
                score=_clip01(score),
                reason=(
                    f"cross-dependency {cross:.2f} with the active "
                    f"columns, cohesion {theme.cohesion:.2f}"
                ),
            )
        )
    return out


def _recluster_candidates(
    config: BlaeuConfig, data_map: DataMap
) -> list[Suggestion]:
    misfit = 1.0 - _clip01(data_map.silhouette)
    out: list[Suggestion] = []
    for k in config.map_k_values:
        if k == data_map.k:
            continue
        score = 0.5 * misfit / (1 + abs(k - data_map.k))
        out.append(
            Suggestion(
                action="recluster",
                target=str(k),
                score=_clip01(score),
                reason=(
                    f"current k={data_map.k} fits at silhouette "
                    f"{data_map.silhouette:.2f}"
                ),
            )
        )
    return out


def _ranked(suggestions: list[Suggestion], limit: int) -> list[Suggestion]:
    """Deterministic ranking: score descending, (action, target) ties."""
    suggestions.sort(key=lambda s: (-s.score, s.action, s.target))
    return suggestions[: max(limit, 0)]

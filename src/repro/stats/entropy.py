"""Shannon entropy estimators over discrete codes.

All estimators are plug-in (maximum likelihood) estimators in **nats**,
computed from contingency counts.  They are the building blocks of the
mutual-information measure that weights Blaeu's dependency graph.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "entropy_from_counts",
    "shannon_entropy",
    "joint_entropy",
    "conditional_entropy",
    "c_log_c",
    "entropies_from_sums",
]


def entropy_from_counts(counts: np.ndarray) -> float:
    """Entropy (nats) of the empirical distribution given by ``counts``."""
    counts = np.asarray(counts, dtype=np.float64).ravel()
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    total = counts.sum()
    if total <= 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log(probabilities)).sum())


def shannon_entropy(codes: np.ndarray) -> float:
    """Entropy (nats) of a vector of non-negative integer codes."""
    codes = _validated(codes)
    if codes.size == 0:
        return 0.0
    return entropy_from_counts(np.bincount(codes))


def joint_entropy(x: np.ndarray, y: np.ndarray) -> float:
    """Entropy (nats) of the joint distribution of two code vectors."""
    x = _validated(x)
    y = _validated(y)
    if x.shape != y.shape:
        raise ValueError(f"length mismatch: {x.shape[0]} vs {y.shape[0]}")
    if x.size == 0:
        return 0.0
    joint = _joint_counts(x, y)
    return entropy_from_counts(joint)


def conditional_entropy(x: np.ndarray, given: np.ndarray) -> float:
    """``H(X | Y)`` in nats: the residual uncertainty of ``x`` given ``given``."""
    return joint_entropy(x, given) - shannon_entropy(given)


def c_log_c(counts: np.ndarray) -> np.ndarray:
    """Elementwise ``c · ln(c)`` with the ``0 · ln(0) = 0`` convention.

    The building block of the *batched* entropy path
    (:mod:`repro.stats.batched`): summing these per contingency segment
    and applying :func:`entropies_from_sums` evaluates thousands of
    plug-in entropies without a Python loop.
    """
    counts = np.asarray(counts, dtype=np.float64)
    return counts * np.log(np.maximum(counts, 1.0))


def entropies_from_sums(
    totals: np.ndarray, c_log_c_sums: np.ndarray
) -> np.ndarray:
    """Plug-in entropies (nats) from segment totals and ``Σ c·ln(c)`` sums.

    Uses the identity ``H = ln(N) − (Σ c·ln c) / N`` (with ``H = 0`` for
    empty segments), which agrees with :func:`entropy_from_counts` to a
    few ulp — the batched kernel's tolerance contract is ``atol 1e-12``
    against the scalar estimators, not bit-equality.

    Values below 1e-12 nats are reported as exactly 0: a constant
    segment's true entropy is 0, but the identity leaves ~1 ulp of
    rounding residue, while the smallest *genuine* nonzero plug-in
    entropy, ``≈ ln(N)/N``, stays above 1e-12 for any N below ~10¹³ —
    so the cutoff only ever snaps degenerate segments, keeping the
    downstream ``H > 0`` guards as sharp as the scalar path's.
    """
    totals = np.asarray(totals, dtype=np.float64)
    sums = np.asarray(c_log_c_sums, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        entropies = np.log(totals) - sums / totals
    return np.where(
        (totals > 0) & (entropies > 1e-12), entropies, 0.0
    )


def _joint_counts(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Contingency counts of the paired codes, as a flat array."""
    n_y = int(y.max()) + 1 if y.size else 1
    paired = x.astype(np.int64) * n_y + y.astype(np.int64)
    return np.bincount(paired)


def _validated(codes: np.ndarray) -> np.ndarray:
    codes = np.asarray(codes)
    if codes.ndim != 1:
        raise ValueError("codes must be one-dimensional")
    if codes.size and codes.min() < 0:
        raise ValueError(
            "codes must be non-negative; drop missing cells before "
            "computing entropies"
        )
    return codes.astype(np.int64)

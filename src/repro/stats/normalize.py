"""Scaling utilities for the preprocessing stage.

Blaeu "normalizes the continuous variables" before clustering (§3) so
that no indicator dominates the distance computations by unit alone.
All scalers are NaN-transparent: missing cells stay NaN and statistics
are computed over present cells only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["zscore", "minmax_scale", "robust_scale", "ScalerStats"]


@dataclass(frozen=True)
class ScalerStats:
    """The fitted statistics of a scaler, for inverse transforms."""

    center: float
    scale: float

    def apply(self, values: np.ndarray) -> np.ndarray:
        """``(values - center) / scale`` (scale 0 maps everything to 0)."""
        values = np.asarray(values, dtype=np.float64)
        if self.scale == 0.0:
            out = np.zeros_like(values)
            out[np.isnan(values)] = np.nan
            return out
        return (values - self.center) / self.scale

    def invert(self, scaled: np.ndarray) -> np.ndarray:
        """Undo :meth:`apply` (identity-center when scale was 0)."""
        scaled = np.asarray(scaled, dtype=np.float64)
        return scaled * self.scale + self.center


def zscore(values: np.ndarray) -> tuple[np.ndarray, ScalerStats]:
    """Center to mean 0, scale to (population) standard deviation 1."""
    values = np.asarray(values, dtype=np.float64)
    present = values[~np.isnan(values)]
    if present.size == 0:
        stats = ScalerStats(center=0.0, scale=0.0)
    else:
        stats = ScalerStats(
            center=float(present.mean()), scale=float(present.std())
        )
    return stats.apply(values), stats


def minmax_scale(values: np.ndarray) -> tuple[np.ndarray, ScalerStats]:
    """Map the present range onto ``[0, 1]``."""
    values = np.asarray(values, dtype=np.float64)
    present = values[~np.isnan(values)]
    if present.size == 0:
        stats = ScalerStats(center=0.0, scale=0.0)
    else:
        low = float(present.min())
        high = float(present.max())
        stats = ScalerStats(center=low, scale=high - low)
    return stats.apply(values), stats


def robust_scale(values: np.ndarray) -> tuple[np.ndarray, ScalerStats]:
    """Center to the median, scale to the interquartile range.

    Preferred when heavy-tailed indicators (income, astronomy fluxes)
    would let outliers crush a z-score's resolution.
    """
    values = np.asarray(values, dtype=np.float64)
    present = values[~np.isnan(values)]
    if present.size == 0:
        stats = ScalerStats(center=0.0, scale=0.0)
    else:
        q1, median, q3 = np.quantile(present, [0.25, 0.5, 0.75])
        stats = ScalerStats(center=float(median), scale=float(q3 - q1))
    return stats.apply(values), stats

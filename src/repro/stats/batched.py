"""Batched all-pairs NMI via fused-code contingency counting.

The scalar path (:mod:`repro.stats.mutual_info`) walks an O(m²) Python
pair loop, paying several full-column passes per pair.  This module
computes the same normalized-mutual-information weights as a *batched
kernel* built on one trick: the joint distribution of two code vectors
``(x, y)`` with cardinalities ``(n_x, n_y)`` is a single ``bincount`` of
the **fused code** ``(x+1) · (n_y+1) + (y+1)``.  The ``+1`` shift gives
missing cells (code ``-1``) their own row 0 / column 0 in each pair's
``(n_x+1) × (n_y+1)`` contingency table, so no masking pass is needed:
the joint counts over *pairwise-complete* rows are the ``[1:, 1:]``
submatrix, and both complete-row marginals are its row and column sums.

One left column is fused against a whole block of right columns of equal
cardinality at once — each pair shifted into its own disjoint code range
— so the entire block's contingency tables come from **one** bincount,
reshape to a dense ``(pairs, n_x+1, n_y+1)`` array, and every entropy in
the block is evaluated with vectorized reductions
(:func:`repro.stats.entropy.entropies_from_sums`) — no per-pair Python.

Three entry points:

* :func:`encode_table` — factorize every column once into a dense int32
  code matrix (missing = ``-1``);
* :func:`pairwise_nmi_matrix` — the in-memory kernel, with an
  ``n_jobs`` thread fan-out over left columns (mirroring
  ``clara_jobs``; results are identical at any worker count);
* :class:`StreamingPairwiseNMI` — the out-of-core twin: the same fused
  contingencies accumulated chunk by chunk, so a store-backed table's
  graph never materializes full columns.

All weights agree with the scalar reference
(:func:`repro.stats.mutual_info.column_dependency`) to ``atol 1e-12``
on identical codes; the only divergence source is the
``ln N − (Σ c·ln c)/N`` entropy form, which differs from the scalar
``−Σ p·ln p`` by a few ulp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.cluster.parallel import map_in_order
from repro.stats.discretize import discretize_column
from repro.stats.entropy import c_log_c, entropies_from_sums
from repro.stats.mutual_info import MIN_COMPLETE_ROWS
from repro.table.column import CategoricalColumn
from repro.table.table import Table

__all__ = [
    "ColumnCodes",
    "encode_table",
    "pairwise_nmi_matrix",
    "StreamingPairwiseNMI",
]

#: Upper bound on fused-array elements per block (per worker thread).
_FUSED_BUDGET = 1 << 21

#: Upper bound on contingency cells per block.
_CELL_BUDGET = 1 << 22

#: Refuse streaming accumulation past this many total contingency cells;
#: at that point a sampled build is the right tool.
_STREAM_CELL_BUDGET = 1 << 26


@dataclass(frozen=True)
class ColumnCodes:
    """A table factorized into aligned integer code vectors.

    Attributes
    ----------
    names:
        Column names, one per matrix row.
    codes:
        ``(n_columns, n_rows)`` int32 matrix; missing cells are ``-1``.
    n_codes:
        Per-column code cardinality (codes lie in ``[0, n_codes)``).
        The kernel's weights do not depend on slack in the cardinality —
        unused codes contribute empty contingency cells — so any upper
        bound is valid.
    """

    names: tuple[str, ...]
    codes: np.ndarray
    n_codes: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.codes.ndim != 2:
            raise ValueError("codes must be a (columns, rows) matrix")
        if self.codes.shape[0] != len(self.names):
            raise ValueError(
                f"{len(self.names)} names for {self.codes.shape[0]} code rows"
            )
        if len(self.n_codes) != len(self.names):
            raise ValueError("n_codes must have one entry per column")

    @property
    def n_columns(self) -> int:
        """Number of encoded columns."""
        return self.codes.shape[0]

    @property
    def n_rows(self) -> int:
        """Number of encoded rows."""
        return self.codes.shape[1]

    def gather(self, indices: np.ndarray) -> "ColumnCodes":
        """The same columns restricted to ``indices`` (in order).

        This is the navigation hot path: a zoomed selection's codes are
        a row gather of the base table's cached codes — no
        re-discretization.
        """
        indices = np.asarray(indices, dtype=np.intp)
        return ColumnCodes(
            names=self.names,
            codes=self.codes[:, indices],
            n_codes=self.n_codes,
        )


def encode_table(
    table: Table,
    columns: Sequence[str] | None = None,
    n_bins: int | None = None,
) -> ColumnCodes:
    """Factorize ``columns`` of ``table`` once into a code matrix.

    Categorical columns pass their codes through (cardinality = the
    category list); numeric columns are discretized exactly like the
    scalar reference (:func:`repro.stats.discretize.discretize_column`).
    """
    names = tuple(columns) if columns is not None else table.column_names
    matrix = np.empty((len(names), table.n_rows), dtype=np.int32)
    cardinalities: list[int] = []
    for row, name in enumerate(names):
        column = table.column(name)
        codes = discretize_column(column, n_bins=n_bins)
        matrix[row] = codes
        if isinstance(column, CategoricalColumn):
            cardinalities.append(len(column.categories))
        else:
            cardinalities.append(int(codes.max(initial=-1)) + 1)
    return ColumnCodes(
        names=names, codes=matrix, n_codes=tuple(cardinalities)
    )


def pairwise_nmi_matrix(
    codes: ColumnCodes,
    n_jobs: int | None = None,
    min_complete_rows: int = MIN_COMPLETE_ROWS,
) -> np.ndarray:
    """The symmetric all-pairs NMI matrix of an encoded table.

    Unit diagonal; pairs with fewer than ``min_complete_rows`` complete
    rows (or a constant/empty side) get weight 0, matching the scalar
    reference.  ``n_jobs`` fans left columns out over threads (``None``
    or 1 serial, 0 every core) with results identical at any setting.
    """
    m = codes.n_columns
    weights = np.eye(m, dtype=np.float64)
    if m < 2:
        return weights
    # The +1 shift: missing becomes 0, real codes become 1..n_codes.
    shifted = (codes.codes + 1).astype(np.int64)
    cards = np.asarray(codes.n_codes, dtype=np.int64)

    def row_task(i: int) -> np.ndarray:
        return _left_row_weights(i, shifted, cards, min_complete_rows)

    rows = map_in_order(row_task, list(range(m - 1)), n_jobs=n_jobs)
    for i, row in enumerate(rows):
        weights[i, i + 1 :] = row
        weights[i + 1 :, i] = row
    return weights


class StreamingPairwiseNMI:
    """Chunked accumulation of the all-pairs fused contingencies.

    The out-of-core twin of :func:`pairwise_nmi_matrix`: feed row chunks
    of the code matrix (store scans produce them one pushdown read at a
    time) through :meth:`update`, then :meth:`finalize` evaluates every
    pair's entropies from the accumulated counts.  Because each pair's
    accumulated table carries the missing row/column explicitly, the
    result equals the in-memory kernel on the concatenation of the
    chunks — complete-row restriction happens once, at finalize.
    """

    def __init__(
        self,
        names: Sequence[str],
        n_codes: Sequence[int],
        min_complete_rows: int = MIN_COMPLETE_ROWS,
    ) -> None:
        self._names = tuple(names)
        self._cards = np.asarray(n_codes, dtype=np.int64)
        self._min_complete = min_complete_rows
        m = len(self._names)
        if len(self._cards) != m:
            raise ValueError("n_codes must have one entry per name")
        self._m = m
        self._groups = [
            _right_groups(i, self._cards) for i in range(max(m - 1, 0))
        ]
        total = sum(
            int(group.total_cells)
            for groups in self._groups
            for group in groups
        )
        if total > _STREAM_CELL_BUDGET:
            raise ValueError(
                "streaming dependency accumulation would need "
                f"{total} contingency cells (cap {_STREAM_CELL_BUDGET}); "
                "build from a row sample instead"
            )
        self._counts = [
            [np.zeros(group.total_cells, dtype=np.int64) for group in groups]
            for groups in self._groups
        ]

    def update(self, chunk: np.ndarray) -> None:
        """Accumulate one ``(n_columns, chunk_rows)`` int32 code chunk."""
        chunk = np.asarray(chunk)
        if chunk.ndim != 2 or chunk.shape[0] != self._m:
            raise ValueError(
                f"chunk must be ({self._m}, rows); got {chunk.shape}"
            )
        shifted = (chunk + 1).astype(np.int64)
        for i in range(self._m - 1):
            x1 = shifted[i]
            for group, counts in zip(self._groups[i], self._counts[i]):
                for start, stop in _blocks(
                    group.n_pairs, chunk.shape[1], group.base
                ):
                    lo = start * group.base
                    hi = stop * group.base
                    counts[lo:hi] += _fused_counts(
                        x1, shifted, group, start, stop
                    )

    def counts_state(self) -> list[list[np.ndarray]]:
        """The accumulated contingency counts (for cross-process merges)."""
        return self._counts

    def merge_counts(self, counts: list[list[np.ndarray]]) -> None:
        """Fold another accumulator's :meth:`counts_state` into this one.

        Contingency accumulation is an elementwise sum, so merging
        per-partition accumulators in any grouping equals one serial
        pass over the concatenated rows — the property the
        process-parallel graph build rests on.  Both sides must have
        been built over the same ``names``/``n_codes``.
        """
        if len(counts) != len(self._counts) or any(
            len(theirs) != len(mine)
            or any(t.shape != m.shape for t, m in zip(theirs, mine))
            for theirs, mine in zip(counts, self._counts)
        ):
            raise ValueError(
                "cannot merge streaming NMI accumulators with different "
                "column/code layouts"
            )
        for mine, theirs in zip(self._counts, counts):
            for accumulator, partial in zip(mine, theirs):
                accumulator += partial

    def finalize(self) -> np.ndarray:
        """The NMI matrix of all rows fed through :meth:`update`."""
        weights = np.eye(self._m, dtype=np.float64)
        for i in range(self._m - 1):
            row = np.zeros(self._m - i - 1, dtype=np.float64)
            for group, counts in zip(self._groups[i], self._counts[i]):
                values = _group_weights(
                    counts,
                    group.n_pairs,
                    group.n_i,
                    group.n_j,
                    self._min_complete,
                )
                row[group.positions] = values
            weights[i, i + 1 :] = row
            weights[i + 1 :, i] = row
        return weights


# ----------------------------------------------------------------------
# Kernel internals
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _RightGroup:
    """The right columns of one left column that share a cardinality.

    Grouping by cardinality makes every contingency table in the group
    the same shape, so one flat bincount reshapes to a dense
    ``(n_pairs, n_i+1, n_j+1)`` array and all per-pair statistics become
    axis reductions.
    """

    n_i: int
    n_j: int
    columns: np.ndarray  #: absolute column indices of the rights
    positions: np.ndarray  #: their offsets within the left's output row

    @property
    def n_pairs(self) -> int:
        return int(self.columns.shape[0])

    @property
    def base(self) -> int:
        """Fused-code range (= contingency cells) per pair."""
        return (self.n_i + 1) * (self.n_j + 1)

    @property
    def total_cells(self) -> int:
        return self.n_pairs * self.base


def _right_groups(i: int, cards: np.ndarray) -> list[_RightGroup]:
    """Group the rights of left column ``i`` by their cardinality."""
    rights = cards[i + 1 :]
    out: list[_RightGroup] = []
    for value in np.unique(rights):
        positions = np.flatnonzero(rights == value)
        out.append(
            _RightGroup(
                n_i=int(cards[i]),
                n_j=int(value),
                columns=positions + i + 1,
                positions=positions,
            )
        )
    return out


def _blocks(n_pairs: int, n_rows: int, base: int) -> Iterator[tuple[int, int]]:
    """Split a group's pairs into blocks bounded by both budgets."""
    if n_pairs <= 0:
        return
    per_block = max(1, _FUSED_BUDGET // max(n_rows, 1))
    per_block = min(per_block, max(1, _CELL_BUDGET // max(base, 1)))
    start = 0
    while start < n_pairs:
        stop = min(start + per_block, n_pairs)
        yield start, stop
        start = stop


def _fused_counts(
    x1: np.ndarray,
    shifted: np.ndarray,
    group: _RightGroup,
    start: int,
    stop: int,
) -> np.ndarray:
    """One bincount covering pairs ``start:stop`` of a right group.

    Fuses the shifted left codes against every right column in the
    block — each pair offset into its own ``base``-sized code range —
    and counts the lot at once.  The result is the blocks' contingency
    tables, flat, in pair order.
    """
    stride = group.n_j + 1
    y1 = shifted[group.columns[start:stop]]
    fused = x1 * stride + y1
    fused += (np.arange(stop - start, dtype=np.int64) * group.base)[:, None]
    return np.bincount(
        fused.ravel(), minlength=(stop - start) * group.base
    )


def _group_weights(
    counts: np.ndarray,
    n_pairs: int,
    n_i: int,
    n_j: int,
    min_complete_rows: int,
) -> np.ndarray:
    """Per-pair NMI from a group's flat contingency counts.

    Reshapes to ``(n_pairs, n_i+1, n_j+1)``; the ``[:, 1:, 1:]``
    submatrix holds the pairwise-complete joint counts, whose axis sums
    are exactly the complete-row marginal counts the scalar reference
    bincounts — so all three entropies per pair come from three
    vectorized reductions.
    """
    table = counts.reshape(n_pairs, n_i + 1, n_j + 1)
    joint = table[:, 1:, 1:]
    x_counts = joint.sum(axis=2)
    y_counts = joint.sum(axis=1)
    totals = x_counts.sum(axis=1)
    h_joint = entropies_from_sums(totals, c_log_c(joint).sum(axis=(1, 2)))
    h_x = entropies_from_sums(totals, c_log_c(x_counts).sum(axis=1))
    h_y = entropies_from_sums(totals, c_log_c(y_counts).sum(axis=1))
    with np.errstate(divide="ignore", invalid="ignore"):
        mi = np.maximum(h_x + h_y - h_joint, 0.0)
        value = mi / np.sqrt(h_x * h_y)
    ok = (h_x > 0.0) & (h_y > 0.0) & (totals >= min_complete_rows)
    return np.clip(np.where(ok, value, 0.0), 0.0, 1.0)


def _left_row_weights(
    i: int,
    shifted: np.ndarray,
    cards: np.ndarray,
    min_complete_rows: int,
) -> np.ndarray:
    """Weights of column ``i`` against every column ``j > i``."""
    out = np.zeros(shifted.shape[0] - i - 1, dtype=np.float64)
    x1 = shifted[i]
    n = shifted.shape[1]
    for group in _right_groups(i, cards):
        values = np.empty(group.n_pairs, dtype=np.float64)
        for start, stop in _blocks(group.n_pairs, n, group.base):
            counts = _fused_counts(x1, shifted, group, start, stop)
            values[start:stop] = _group_weights(
                counts, stop - start, group.n_i, group.n_j, min_complete_rows
            )
        out[group.positions] = values
    return out

"""Discretization of numeric columns for entropy-based estimators.

Mutual information over mixed data requires a discrete representation of
continuous columns.  We provide the two classic binning schemes plus the
standard bin-count rules; the dependency graph uses equal-frequency bins
by default because MI estimates from equal-frequency bins are far less
sensitive to outliers and skew (heavy-tailed indicators are common in the
paper's OECD data).
"""

from __future__ import annotations

import math
from enum import Enum

import numpy as np

from repro.table.column import CategoricalColumn, Column, NumericColumn

__all__ = [
    "BinningRule",
    "suggest_bin_count",
    "equal_width_cuts",
    "equal_frequency_cuts",
    "apply_bin_cuts",
    "equal_width_bins",
    "equal_frequency_bins",
    "discretize_column",
]

#: Code assigned to missing cells in discretized output.
MISSING_BIN = -1


class BinningRule(Enum):
    """Rules for choosing the number of bins from the sample size."""

    STURGES = "sturges"
    RICE = "rice"
    SQRT = "sqrt"


def suggest_bin_count(
    n: int, rule: BinningRule = BinningRule.STURGES, max_bins: int = 32
) -> int:
    """A bin count for ``n`` observations under the given rule, ≥ 1."""
    if n <= 1:
        return 1
    if rule is BinningRule.STURGES:
        bins = int(math.ceil(math.log2(n) + 1))
    elif rule is BinningRule.RICE:
        bins = int(math.ceil(2.0 * n ** (1.0 / 3.0)))
    else:
        bins = int(math.ceil(math.sqrt(n)))
    return max(1, min(bins, max_bins))


def equal_width_cuts(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior cut points of ``n_bins`` equal-width intervals over ``values``.

    Cut points are the separable representation of a binning: a value's
    code is ``searchsorted(cuts, value, side="right")`` (see
    :func:`apply_bin_cuts`), which lets cuts derived from one row set —
    a persisted sample, say — encode any other rows later, chunk by
    chunk.  A constant (or empty) input yields no cuts: a single bin.
    """
    values = np.asarray(values, dtype=np.float64)
    _require_finite(values)
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    if values.size == 0:
        return np.empty(0, dtype=np.float64)
    low, high = float(values.min()), float(values.max())
    if low == high:
        return np.empty(0, dtype=np.float64)
    return np.linspace(low, high, n_bins + 1)[1:-1]


def equal_frequency_cuts(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior cut points of ``n_bins`` equal-count bins over ``values``.

    Ties at quantile boundaries go to the lower bin, so heavily repeated
    values can make bins uneven; duplicate cut points are merged.  The
    resulting code range is ``[0, len(cuts)]`` under
    :func:`apply_bin_cuts`.
    """
    values = np.asarray(values, dtype=np.float64)
    _require_finite(values)
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    if values.size == 0:
        return np.empty(0, dtype=np.float64)
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    return np.unique(np.quantile(values, quantiles))


def apply_bin_cuts(values: np.ndarray, cuts: np.ndarray) -> np.ndarray:
    """Integer codes in ``[0, len(cuts)]`` for NaN-free ``values``.

    The inverse of the cut representation: values up to and including a
    cut point fall in the bin below it.  Out-of-range values (smaller or
    larger than anything the cuts were derived from) land in the first or
    last bin, so sample-derived cuts can encode the full column.
    """
    values = np.asarray(values, dtype=np.float64)
    cuts = np.asarray(cuts, dtype=np.float64)
    return np.searchsorted(cuts, values, side="right").astype(np.int32)


def equal_width_bins(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Assign each value to one of ``n_bins`` equal-width intervals.

    ``values`` must be free of NaN.  Returns int codes in ``[0, n_bins)``.
    A constant column collapses to a single bin.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        return np.empty(0, dtype=np.int32)
    return apply_bin_cuts(values, equal_width_cuts(values, n_bins))


def equal_frequency_bins(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Assign each value to one of ``n_bins`` (approximately) equal-count bins.

    Ties at quantile boundaries go to the lower bin, so heavily repeated
    values can make bins uneven; duplicate edges are merged.  Returns int
    codes in ``[0, effective_bins)``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        return np.empty(0, dtype=np.int32)
    return apply_bin_cuts(values, equal_frequency_cuts(values, n_bins))


def discretize_column(
    column: Column,
    n_bins: int | None = None,
    rule: BinningRule = BinningRule.STURGES,
    equal_frequency: bool = True,
) -> np.ndarray:
    """Integer codes for any column; missing cells get :data:`MISSING_BIN`.

    Categorical columns pass through their codes unchanged; numeric columns
    are binned (equal-frequency by default).
    """
    if isinstance(column, CategoricalColumn):
        return column.codes.astype(np.int32)
    if not isinstance(column, NumericColumn):
        raise TypeError(f"unsupported column type {type(column).__name__}")

    codes = np.full(len(column), MISSING_BIN, dtype=np.int32)
    present = column.present_mask
    present_values = column.values[present]
    if present_values.size == 0:
        return codes
    if n_bins is None:
        n_bins = suggest_bin_count(present_values.size, rule)
    if equal_frequency:
        binned = equal_frequency_bins(present_values, n_bins)
    else:
        binned = equal_width_bins(present_values, n_bins)
    codes[present] = binned
    return codes


def _require_finite(values: np.ndarray) -> None:
    if values.size and not np.all(np.isfinite(values)):
        raise ValueError(
            "binning requires finite values; filter the missing mask first"
        )

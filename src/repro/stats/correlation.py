"""Correlation coefficients — the dependency measures the paper mentions
as alternatives to mutual information ("we could have used any function
from the literature, such as the correlation coefficient", §3).

Both estimators drop pairwise-incomplete rows and return 0 for degenerate
inputs (constant vectors, too few rows), matching the MI module's "no
evidence" convention so the dependency graph can swap measures freely.
"""

from __future__ import annotations

import numpy as np

from repro.table.column import NumericColumn

__all__ = ["pearson", "spearman"]

#: Below this many pairwise-complete rows a correlation is reported as 0.
MIN_COMPLETE_ROWS = 3


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson's r between two float vectors (NaN-aware, in ``[-1, 1]``)."""
    x, y = _complete_pairs(x, y)
    if x.size < MIN_COMPLETE_ROWS:
        return 0.0
    x_centered = x - x.mean()
    y_centered = y - y.mean()
    denominator = np.sqrt((x_centered**2).sum() * (y_centered**2).sum())
    if denominator == 0.0:
        return 0.0
    r = float((x_centered * y_centered).sum() / denominator)
    return float(np.clip(r, -1.0, 1.0))


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman's rank correlation (Pearson over mid-ranks)."""
    x, y = _complete_pairs(x, y)
    if x.size < MIN_COMPLETE_ROWS:
        return 0.0
    return pearson(_midranks(x), _midranks(y))


def column_correlation(a: NumericColumn, b: NumericColumn, rank: bool = False) -> float:
    """Absolute correlation between two numeric columns.

    The dependency graph needs a symmetric non-negative weight, so the
    sign is dropped; ``rank=True`` switches to Spearman.
    """
    if len(a) != len(b):
        raise ValueError(
            f"columns {a.name!r} and {b.name!r} have different lengths"
        )
    measure = spearman if rank else pearson
    return abs(measure(a.values, b.values))


def _complete_pairs(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"length mismatch: {x.shape[0]} vs {y.shape[0]}")
    complete = ~(np.isnan(x) | np.isnan(y))
    return x[complete], y[complete]


def _midranks(values: np.ndarray) -> np.ndarray:
    """Mid-ranks (average rank for ties), 1-based."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = np.arange(1, values.size + 1, dtype=np.float64)
    # Average the ranks of tied runs.
    sorted_values = values[order]
    i = 0
    while i < sorted_values.size:
        j = i
        while j + 1 < sorted_values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        if j > i:
            tied = order[i : j + 1]
            ranks[tied] = ranks[tied].mean()
        i = j + 1
    return ranks

"""Correlation coefficients — the dependency measures the paper mentions
as alternatives to mutual information ("we could have used any function
from the literature, such as the correlation coefficient", §3).

Both estimators drop pairwise-incomplete rows and return 0 for degenerate
inputs (constant vectors, too few rows), matching the MI module's "no
evidence" convention so the dependency graph can swap measures freely.
"""

from __future__ import annotations

import numpy as np

from repro.table.column import NumericColumn

__all__ = ["pearson", "spearman", "pairwise_correlation_matrix"]

#: Below this many pairwise-complete rows a correlation is reported as 0.
MIN_COMPLETE_ROWS = 3


def pairwise_correlation_matrix(
    matrix: np.ndarray, rank: bool = False
) -> np.ndarray:
    """All-pairs pairwise-complete correlation over the columns of ``matrix``.

    ``matrix`` is ``(n_rows, n_columns)`` float64 with NaN marking
    missing cells.  The masked-product formulation evaluates every
    pair's Pearson r over exactly its complete rows in a handful of
    matrix multiplications — the vectorized replacement for the
    dependency graph's per-pair Python loop.  Degenerate pairs (fewer
    than :data:`MIN_COMPLETE_ROWS` complete rows, or zero variance on
    either side) get 0, matching :func:`pearson`.

    With ``rank=True``, each column is mid-ranked once over its present
    rows before correlating (casewise ranks with pairwise deletion).
    This differs from :func:`spearman` — which re-ranks each pair's
    complete rows from scratch — only when missing patterns differ
    between columns; on complete data the two agree.
    """
    values = np.array(matrix, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    if rank:
        for j in range(values.shape[1]):
            present = ~np.isnan(values[:, j])
            values[present, j] = _midranks(values[present, j])
    present = ~np.isnan(values)
    # Center by the column mean over present rows: algebraically neutral
    # for the product-moment formula, numerically vital against
    # catastrophic cancellation when values sit far from zero.
    with np.errstate(invalid="ignore"):
        counts = present.sum(axis=0)
        sums = np.where(present, values, 0.0).sum(axis=0)
        means = np.divide(
            sums,
            counts,
            out=np.zeros_like(sums),
            where=counts > 0,
        )
    centered = np.where(present, values - means, 0.0)
    mask = present.astype(np.float64)

    n = mask.T @ mask
    sum_x = centered.T @ mask
    sum_xy = centered.T @ centered
    sum_xx = (centered * centered).T @ mask
    covariance = n * sum_xy - sum_x * sum_x.T
    variance_x = n * sum_xx - sum_x**2
    with np.errstate(divide="ignore", invalid="ignore"):
        r = covariance / np.sqrt(variance_x * variance_x.T)
    ok = (
        (n >= MIN_COMPLETE_ROWS) & (variance_x > 0.0) & (variance_x.T > 0.0)
    )
    return np.clip(np.where(ok, r, 0.0), -1.0, 1.0)


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson's r between two float vectors (NaN-aware, in ``[-1, 1]``)."""
    x, y = _complete_pairs(x, y)
    if x.size < MIN_COMPLETE_ROWS:
        return 0.0
    x_centered = x - x.mean()
    y_centered = y - y.mean()
    denominator = np.sqrt((x_centered**2).sum() * (y_centered**2).sum())
    if denominator == 0.0:
        return 0.0
    r = float((x_centered * y_centered).sum() / denominator)
    return float(np.clip(r, -1.0, 1.0))


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman's rank correlation (Pearson over mid-ranks)."""
    x, y = _complete_pairs(x, y)
    if x.size < MIN_COMPLETE_ROWS:
        return 0.0
    return pearson(_midranks(x), _midranks(y))


def column_correlation(a: NumericColumn, b: NumericColumn, rank: bool = False) -> float:
    """Absolute correlation between two numeric columns.

    The dependency graph needs a symmetric non-negative weight, so the
    sign is dropped; ``rank=True`` switches to Spearman.
    """
    if len(a) != len(b):
        raise ValueError(
            f"columns {a.name!r} and {b.name!r} have different lengths"
        )
    measure = spearman if rank else pearson
    return abs(measure(a.values, b.values))


def _complete_pairs(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"length mismatch: {x.shape[0]} vs {y.shape[0]}")
    complete = ~(np.isnan(x) | np.isnan(y))
    return x[complete], y[complete]


def _midranks(values: np.ndarray) -> np.ndarray:
    """Mid-ranks (average rank for ties), 1-based."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = np.arange(1, values.size + 1, dtype=np.float64)
    # Average the ranks of tied runs.
    sorted_values = values[order]
    i = 0
    while i < sorted_values.size:
        j = i
        while j + 1 < sorted_values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        if j > i:
            tied = order[i : j + 1]
            ranks[tied] = ranks[tied].mean()
        i = j + 1
    return ranks

"""Statistical dependency measures for the dependency graph.

The paper builds its dependency graph from pairwise column dependencies
and picks mutual information "because it is very flexible: it copes with
mixed values and it is sensitive to non-linear relationships" (§3).  This
package implements that estimator (via discretization) together with the
alternatives the paper mentions (correlation coefficients) and the
normalization utilities the preprocessing stage needs.
"""

from repro.stats.correlation import pearson, spearman
from repro.stats.discretize import (
    BinningRule,
    discretize_column,
    equal_frequency_bins,
    equal_width_bins,
    suggest_bin_count,
)
from repro.stats.entropy import (
    conditional_entropy,
    entropy_from_counts,
    joint_entropy,
    shannon_entropy,
)
from repro.stats.mutual_info import (
    column_dependency,
    mutual_information,
    normalized_mutual_information,
    pairwise_dependencies,
)
from repro.stats.normalize import (
    minmax_scale,
    robust_scale,
    zscore,
)

__all__ = [
    "BinningRule",
    "column_dependency",
    "conditional_entropy",
    "discretize_column",
    "entropy_from_counts",
    "equal_frequency_bins",
    "equal_width_bins",
    "joint_entropy",
    "minmax_scale",
    "mutual_information",
    "normalized_mutual_information",
    "pairwise_dependencies",
    "pearson",
    "robust_scale",
    "shannon_entropy",
    "spearman",
    "suggest_bin_count",
    "zscore",
]

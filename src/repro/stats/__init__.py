"""Statistical dependency measures for the dependency graph.

The paper builds its dependency graph from pairwise column dependencies
and picks mutual information "because it is very flexible: it copes with
mixed values and it is sensitive to non-linear relationships" (§3).  This
package implements that estimator (via discretization) together with the
alternatives the paper mentions (correlation coefficients) and the
normalization utilities the preprocessing stage needs.
"""

from repro.stats.batched import (
    ColumnCodes,
    StreamingPairwiseNMI,
    encode_table,
    pairwise_nmi_matrix,
)
from repro.stats.correlation import pearson, spearman
from repro.stats.discretize import (
    BinningRule,
    apply_bin_cuts,
    discretize_column,
    equal_frequency_bins,
    equal_frequency_cuts,
    equal_width_bins,
    equal_width_cuts,
    suggest_bin_count,
)
from repro.stats.entropy import (
    c_log_c,
    conditional_entropy,
    entropies_from_sums,
    entropy_from_counts,
    joint_entropy,
    shannon_entropy,
)
from repro.stats.mutual_info import (
    column_dependency,
    mutual_information,
    normalized_mutual_information,
    pairwise_dependencies,
)
from repro.stats.normalize import (
    minmax_scale,
    robust_scale,
    zscore,
)

__all__ = [
    "BinningRule",
    "ColumnCodes",
    "StreamingPairwiseNMI",
    "apply_bin_cuts",
    "c_log_c",
    "column_dependency",
    "conditional_entropy",
    "discretize_column",
    "encode_table",
    "entropies_from_sums",
    "entropy_from_counts",
    "equal_frequency_bins",
    "equal_frequency_cuts",
    "equal_width_bins",
    "equal_width_cuts",
    "joint_entropy",
    "minmax_scale",
    "mutual_information",
    "normalized_mutual_information",
    "pairwise_dependencies",
    "pairwise_nmi_matrix",
    "pearson",
    "robust_scale",
    "shannon_entropy",
    "spearman",
    "suggest_bin_count",
    "zscore",
]

"""Mutual information between columns of mixed type.

This is the dependency measure of the paper's dependency graph (§3): MI
"copes with mixed values and is sensitive to non-linear relationships".
Numeric columns are discretized (equal-frequency bins) and categorical
columns use their codes directly; rows where either column is missing are
dropped pairwise.

Raw MI grows with marginal entropies, which would make high-cardinality
columns look universally "dependent".  The graph therefore uses the
**normalized** variant ``NMI(X, Y) = I(X; Y) / sqrt(H(X) · H(Y))``
(geometric-mean normalization, Strehl & Ghosh 2002), which lies in
``[0, 1]``, is symmetric, and does not collapse when a low-entropy column
(a binary flag) is fully determined by a high-entropy one (a continuous
indicator) — the typical mixed-type pair in Blaeu's tables.

The estimators here are the **scalar reference**: one pair at a time,
one entropy call per distribution.  The dependency graph's hot path
uses the batched twin (:mod:`repro.stats.batched`), which evaluates all
pairs at once through fused-code ``bincount`` contingencies and must
agree with these functions to ``atol 1e-12`` — the property tests hold
the two implementations against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.discretize import MISSING_BIN, discretize_column
from repro.stats.entropy import joint_entropy, shannon_entropy
from repro.table.column import Column
from repro.table.table import Table

__all__ = [
    "mutual_information",
    "normalized_mutual_information",
    "column_dependency",
    "pairwise_dependencies",
]

#: Below this many pairwise-complete rows an MI estimate is unreliable and
#: reported as 0 (no evidence of dependency).
MIN_COMPLETE_ROWS = 8


def mutual_information(x: np.ndarray, y: np.ndarray) -> float:
    """``I(X; Y)`` in nats from two aligned code vectors (no missing codes).

    Clamped at 0: the plug-in identity ``H(X) + H(Y) − H(X, Y)`` can go
    microscopically negative through floating-point rounding.
    """
    mi = shannon_entropy(x) + shannon_entropy(y) - joint_entropy(x, y)
    return max(0.0, float(mi))


def normalized_mutual_information(x: np.ndarray, y: np.ndarray) -> float:
    """``I(X; Y) / sqrt(H(X) · H(Y))`` — in ``[0, 1]``.

    Constant vectors (entropy 0) share no information *and* have none to
    share; we define the result as 0 in those degenerate cases.
    """
    h_x = shannon_entropy(x)
    h_y = shannon_entropy(y)
    if h_x <= 0.0 or h_y <= 0.0:
        return 0.0
    value = mutual_information(x, y) / np.sqrt(h_x * h_y)
    return float(min(1.0, max(0.0, value)))


def column_dependency(
    a: Column,
    b: Column,
    n_bins: int | None = None,
    normalized: bool = True,
) -> float:
    """Dependency between two table columns of any kind.

    Discretizes as needed, drops rows missing in either column, and
    returns (normalized) MI.  Returns 0 when fewer than
    :data:`MIN_COMPLETE_ROWS` complete rows remain.
    """
    if len(a) != len(b):
        raise ValueError(
            f"columns {a.name!r} and {b.name!r} have different lengths"
        )
    codes_a = discretize_column(a, n_bins=n_bins)
    codes_b = discretize_column(b, n_bins=n_bins)
    complete = (codes_a != MISSING_BIN) & (codes_b != MISSING_BIN)
    if int(complete.sum()) < MIN_COMPLETE_ROWS:
        return 0.0
    x = codes_a[complete]
    y = codes_b[complete]
    if normalized:
        return normalized_mutual_information(x, y)
    return mutual_information(x, y)


@dataclass(frozen=True)
class _PreparedColumn:
    """A column discretized once, for reuse across all its pairs."""

    name: str
    codes: np.ndarray
    present: np.ndarray


def pairwise_dependencies(
    table: Table,
    columns: Sequence[str] | None = None,
    n_bins: int | None = None,
    normalized: bool = True,
) -> dict[tuple[str, str], float]:
    """All pairwise dependencies among ``columns`` of ``table``.

    Returns a mapping keyed by name pairs in table order (``(a, b)`` with
    ``a`` before ``b``).  Each column is discretized once; the quadratic
    pair loop then works on cached codes — this is what makes the
    378-column OECD graph tractable at interaction time.
    """
    names = list(columns) if columns is not None else list(table.column_names)
    prepared: list[_PreparedColumn] = []
    for name in names:
        codes = discretize_column(table.column(name), n_bins=n_bins)
        prepared.append(
            _PreparedColumn(name, codes, codes != MISSING_BIN)
        )

    out: dict[tuple[str, str], float] = {}
    for i, left in enumerate(prepared):
        for right in prepared[i + 1 :]:
            complete = left.present & right.present
            if int(complete.sum()) < MIN_COMPLETE_ROWS:
                out[(left.name, right.name)] = 0.0
                continue
            x = left.codes[complete]
            y = right.codes[complete]
            if normalized:
                value = normalized_mutual_information(x, y)
            else:
                value = mutual_information(x, y)
            out[(left.name, right.name)] = value
    return out

"""The process-global metric registry (Prometheus text exposition).

Grown out of the serving layer's private registry
(:mod:`repro.service.metrics` now re-exports from here): counters keyed
by (route, status), log-bucketed latency histograms, named counters,
named histograms and gauges — all thread-safe, all rendered by
:meth:`Metrics.render` into the ``/metrics`` body.

Promotion to :mod:`repro.obs` adds three things:

* a **process-global registry** (:func:`get_metrics`), so the cluster,
  store, graph and pipeline layers record uniformly whether or not the
  service is running;
* **named histograms** (:meth:`Metrics.observe`) for per-stage and
  per-scan latencies, not just per-route request latencies;
* **validation at registration time**: malformed metric names and label
  values containing ``\\n`` or ``"`` are rejected with ``ValueError``
  instead of silently corrupting the exposition body
  (:func:`escape_label_value` sanitizes untrusted label inputs first).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "Metrics",
    "escape_label_value",
    "get_metrics",
    "reset_metrics",
    "set_global_metrics",
]

#: Default latency buckets (seconds): 1 ms … 10 s, roughly log-spaced.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: The Prometheus metric-name grammar.
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")


def _validate_name(name: str) -> str:
    if not isinstance(name, str) or _NAME_RE.match(name) is None:
        raise ValueError(
            f"invalid metric name {name!r}: must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _has_unescaped_quote(value: str) -> bool:
    backslashes = 0
    for char in value:
        if char == "\\":
            backslashes += 1
            continue
        if char == '"' and backslashes % 2 == 0:
            return True
        backslashes = 0
    return False


def _validate_label_value(value: str) -> str:
    if (
        not isinstance(value, str)
        or "\n" in value
        or _has_unescaped_quote(value)
    ):
        raise ValueError(
            f"invalid label value {value!r}: raw newlines and unescaped "
            "double quotes would corrupt the exposition body; "
            "escape_label_value() first"
        )
    return value


def escape_label_value(value: str) -> str:
    """Make an untrusted string safe to use as a label value.

    Escapes backslashes, double quotes and newlines per the exposition
    format — the serving layer runs raw request paths through this
    before using them as route labels.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class Histogram:
    """A fixed-bucket histogram of observed values (seconds)."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self._buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self._buckets) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self._buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper bucket bound); 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        cumulative = self.cumulative()
        total = cumulative[-1][1]
        if total == 0:
            return 0.0
        threshold = q * total
        for bound, running in cumulative:
            if running >= threshold:
                return bound if bound != float("inf") else self._buckets[-1]
        return self._buckets[-1]  # pragma: no cover - loop always returns


class Metrics:
    """One metric registry.

    ``observe_request`` is the write path of the HTTP layer;
    ``increment`` / ``observe`` / ``set_gauge`` are the generic write
    paths every other layer shares.  Names and label values are
    validated at registration time (see the module docstring).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: dict[tuple[str, int], int] = {}
        self._latency: dict[str, Histogram] = {}
        self._gauges: dict[str, float] = {}
        self._counters: dict[str, int] = {}
        self._labeled: dict[str, dict[tuple[tuple[str, str], ...], int]] = {}
        self._histograms: dict[str, Histogram] = {}

    def observe_request(self, route: str, status: int, seconds: float) -> None:
        """Record one finished HTTP request."""
        _validate_label_value(route)
        with self._lock:
            key = (route, int(status))
            self._requests[key] = self._requests.get(key, 0) + 1
            histogram = self._latency.get(route)
            if histogram is None:
                histogram = self._latency[route] = Histogram()
        histogram.observe(seconds)

    def set_gauge(self, name: str, value: float) -> None:
        """Set an instantaneous value (cache size, pool depth, …)."""
        _validate_name(name)
        with self._lock:
            self._gauges[name] = float(value)

    def increment(self, name: str, by: int = 1) -> None:
        """Add to a monotonic named counter (created at first use).

        The generic sibling of ``observe_request`` for non-HTTP events —
        the graph engine counts its builds and cache hits here, so the
        same numbers back both ``/metrics`` and the CLI's build report.
        """
        _validate_name(name)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        """Current value of a named counter (0 before first increment)."""
        with self._lock:
            return self._counters.get(name, 0)

    def increment_labeled(
        self, name: str, labels: dict[str, str], by: int = 1
    ) -> None:
        """Add to one labeled series of a monotonic counter.

        The labeled sibling of :meth:`increment` — one counter name
        carries several ``{label="value"}`` series (the tiered cache
        splits its hits by ``tier``).  Label names follow the metric
        grammar; label values must already be exposition-safe
        (:func:`escape_label_value` untrusted input first).
        """
        _validate_name(name)
        key = tuple(
            (_validate_name(label), _validate_label_value(value))
            for label, value in sorted(labels.items())
        )
        if not key:
            raise ValueError("labeled counters need at least one label")
        with self._lock:
            series = self._labeled.setdefault(name, {})
            series[key] = series.get(key, 0) + by

    def labeled_counter(self, name: str, labels: dict[str, str]) -> int:
        """Current value of one labeled series (0 before first increment)."""
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._labeled.get(name, {}).get(key, 0)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram.

        The per-stage and per-scan latency path: every layer observes
        under its own ``blaeu_*_seconds`` name and ``/metrics`` renders
        them all uniformly.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                _validate_name(name)
                histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    def named_histogram(self, name: str) -> Histogram | None:
        """The named histogram (``None`` before its first observation)."""
        with self._lock:
            return self._histograms.get(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def request_count(self, route: str | None = None) -> int:
        """Total requests (optionally restricted to one route)."""
        with self._lock:
            return sum(
                count
                for (r, _), count in self._requests.items()
                if route is None or r == route
            )

    def histogram(self, route: str) -> Histogram | None:
        """The latency histogram of ``route`` (``None`` before traffic)."""
        with self._lock:
            return self._latency.get(route)

    def render(self) -> str:
        """The Prometheus-style text body served at ``/metrics``."""
        with self._lock:
            requests = dict(self._requests)
            latency = dict(self._latency)
            gauges = dict(self._gauges)
            counters = dict(self._counters)
            labeled = {
                name: dict(series) for name, series in self._labeled.items()
            }
            histograms = dict(self._histograms)
        lines: list[str] = []
        lines.append("# TYPE blaeu_requests_total counter")
        for (route, status), count in sorted(requests.items()):
            lines.append(
                f'blaeu_requests_total{{route="{route}",status="{status}"}} '
                f"{count}"
            )
        lines.append("# TYPE blaeu_request_seconds histogram")
        for route, histogram in sorted(latency.items()):
            _render_histogram(
                lines, "blaeu_request_seconds", histogram, f'route="{route}",'
            )
        for name, value in sorted(counters.items()):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {value}")
        for name, series in sorted(labeled.items()):
            lines.append(f"# TYPE {name} counter")
            for key, value in sorted(series.items()):
                rendered = ",".join(f'{k}="{v}"' for k, v in key)
                lines.append(f"{name}{{{rendered}}} {value}")
        for name, histogram in sorted(histograms.items()):
            lines.append(f"# TYPE {name} histogram")
            _render_histogram(lines, name, histogram, "")
        for name, value in sorted(gauges.items()):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value:g}")
        return "\n".join(lines) + "\n"


def _render_histogram(
    lines: list[str], name: str, histogram: Histogram, label_prefix: str
) -> None:
    for bound, running in histogram.cumulative():
        label = "+Inf" if bound == float("inf") else f"{bound:g}"
        lines.append(
            f'{name}_bucket{{{label_prefix}le="{label}"}} {running}'
        )
    if label_prefix:
        labels = "{" + label_prefix.rstrip(",") + "}"
    else:
        labels = ""
    lines.append(f"{name}_sum{labels} {histogram.sum:.6f}")
    lines.append(f"{name}_count{labels} {histogram.count}")


# ----------------------------------------------------------------------
# The process-global registry
# ----------------------------------------------------------------------

_GLOBAL = Metrics()


def get_metrics() -> Metrics:
    """The process-global registry every layer records into by default."""
    return _GLOBAL


def set_global_metrics(metrics: Metrics) -> Metrics:
    """Install ``metrics`` as the process-global registry."""
    global _GLOBAL
    _GLOBAL = metrics
    return metrics


def reset_metrics() -> Metrics:
    """Install (and return) a fresh process-global registry.

    The service and the shell call this at construction so their
    telemetry starts from zero — one composition root, one registry.
    """
    return set_global_metrics(Metrics())

"""An opt-in sampling profiler hook for stage execution.

A single daemon thread wakes every ``interval`` seconds and reads the
stacks of the threads currently inside a profiled block via
``sys._current_frames()`` — the standard low-overhead sampling trick:
nothing is traced, the profiled code runs unmodified, and the cost is
one dictionary lookup per tick whether one stage or twenty are active.

The hook is wired into :meth:`repro.core.pipeline.MapPipeline._stage`:
when a profiler is installed (:func:`enable_profiling`), every stage
computation runs inside :func:`profile_block`, and
:meth:`SamplingProfiler.report` afterwards shows where each stage's
time went, innermost frame first.  With no profiler installed the hook
is a single module-global ``None`` check.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "SamplingProfiler",
    "disable_profiling",
    "enable_profiling",
    "get_profiler",
    "profile_block",
]


class SamplingProfiler:
    """Periodic stack sampling of threads inside profiled blocks."""

    def __init__(self, interval: float = 0.005, max_depth: int = 30) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.max_depth = max_depth
        self._lock = threading.Lock()
        #: thread id → label of the block it is currently inside.
        self._active: dict[int, str] = {}
        #: label → Counter of sampled frame descriptions.
        self._samples: dict[str, Counter[str]] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Start the sampling thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="blaeu-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampling thread and wait for it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            with self._lock:
                active = dict(self._active)
            if not active:
                continue
            frames = sys._current_frames()
            with self._lock:
                for thread_id, label in active.items():
                    frame = frames.get(thread_id)
                    if frame is None:
                        continue
                    counter = self._samples.setdefault(label, Counter())
                    counter[_describe(frame)] += 1

    # ------------------------------------------------------------------
    # Block registration (used via profile_block)
    # ------------------------------------------------------------------

    def enter(self, label: str) -> int:
        thread_id = threading.get_ident()
        with self._lock:
            self._active[thread_id] = label
        return thread_id

    def leave(self, thread_id: int) -> None:
        with self._lock:
            self._active.pop(thread_id, None)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def report(self, top: int = 5) -> dict[str, list[tuple[str, int]]]:
        """label → the ``top`` most-sampled frames with their counts."""
        with self._lock:
            return {
                label: counter.most_common(top)
                for label, counter in sorted(self._samples.items())
            }

    def sample_count(self, label: str | None = None) -> int:
        """Total samples taken (optionally for one label)."""
        with self._lock:
            if label is not None:
                return sum(self._samples.get(label, Counter()).values())
            return sum(sum(c.values()) for c in self._samples.values())


def _describe(frame) -> str:
    """The innermost frame as ``function (file:line)``."""
    code = frame.f_code
    return f"{code.co_name} ({code.co_filename}:{frame.f_lineno})"


# ----------------------------------------------------------------------
# The process-global hook
# ----------------------------------------------------------------------

_PROFILER: SamplingProfiler | None = None


def get_profiler() -> SamplingProfiler | None:
    """The installed profiler, or ``None`` (the default)."""
    return _PROFILER


def enable_profiling(interval: float = 0.005) -> SamplingProfiler:
    """Install and start a process-global sampling profiler."""
    global _PROFILER
    if _PROFILER is not None:
        _PROFILER.stop()
    _PROFILER = SamplingProfiler(interval=interval).start()
    return _PROFILER


def disable_profiling() -> None:
    """Stop and remove the process-global profiler."""
    global _PROFILER
    if _PROFILER is not None:
        _PROFILER.stop()
        _PROFILER = None


@contextmanager
def profile_block(label: str) -> Iterator[None]:
    """Sample the current thread under ``label`` while the block runs.

    A no-op (one global read) when no profiler is installed — safe to
    leave on hot paths permanently.
    """
    profiler = _PROFILER
    if profiler is None:
        yield
        return
    thread_id = profiler.enter(label)
    try:
        yield
    finally:
        profiler.leave(thread_id)

"""Hierarchical tracing for the whole engine, without dependencies.

One request produces one *trace*: a tree of spans, each with a name,
monotonic start/duration, structured attributes, and ``trace_id`` /
``span_id`` / ``parent_id`` links.  The current span lives in a
:mod:`contextvars` variable, so parenting follows the flow of control —
across ``await`` points, into :class:`~repro.service.pool.WorkerPool`
threads, and through the :func:`~repro.cluster.parallel.map_in_order`
fan-outs of CLARA draws and the batched NMI kernel — without any
explicit plumbing at the call sites.

The tracer is **off by default** and the disabled path is engineered to
cost nothing: :meth:`Tracer.span` returns the module-level
:data:`NULL_SPAN` singleton — no allocation, no clock reads — and every
attribute write at an instrumentation site is guarded by
``span.enabled``.  Finished spans land in a bounded ring buffer
(:func:`Tracer.traces` groups them for ``/trace`` and the CLI), can be
exported as JSONL for offline analysis, and optionally feed a
threshold-configurable slow-op log.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, TextIO

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "collect_notes",
    "configure_tracing",
    "current_span",
    "format_fields",
    "get_tracer",
    "note",
    "render_trace",
    "set_tracer",
]

#: The span enclosing the current flow of control (``None`` outside any).
_CURRENT: ContextVar["Span | None"] = ContextVar(
    "blaeu_current_span", default=None
)

#: Structured side-channel fields for the innermost request (see
#: :func:`collect_notes`); ``None`` when nobody is listening.
_NOTES: ContextVar[dict | None] = ContextVar("blaeu_obs_notes", default=None)


def _new_id(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


class Span:
    """One timed operation inside a trace.

    Spans are context managers: entering makes the span current (so
    spans opened inside parent to it), exiting records the duration and
    hands the span to its tracer's ring buffer.  ``attributes`` carries
    structured facts (cache hit/miss, row counts, chosen k); writers
    should guard attribute code behind :attr:`enabled` so instrumented
    hot paths stay free when tracing is off.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "wall_start",
        "start",
        "duration",
        "attributes",
        "_tracer",
        "_token",
    )

    #: Real spans record; the :data:`NULL_SPAN` stand-in does not.
    enabled = True

    def __init__(
        self, tracer: "Tracer", name: str, trace_id: str, parent_id: str | None
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id(4)
        self.parent_id = parent_id
        self.attributes: dict[str, object] = {}
        self.duration = 0.0
        self._tracer = tracer
        self._token = None
        self.wall_start = time.time()
        self.start = time.perf_counter()

    def set(self, key: str, value: object) -> None:
        """Attach one structured attribute."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.duration = time.perf_counter() - self.start
        if self._token is not None:
            try:
                _CURRENT.reset(self._token)
            except ValueError:  # pragma: no cover - cross-context exit
                _CURRENT.set(None)
            self._token = None
        self._tracer._finish(self)
        return False

    def to_dict(self) -> dict[str, object]:
        """The span as a JSON-ready mapping (one JSONL record)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.wall_start,
            "offset": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """The shared no-op span the disabled tracer hands out.

    A singleton: ``tracer.span(...)`` with tracing off allocates
    nothing, reads no clock, and every method is a constant no-op.
    """

    __slots__ = ()

    enabled = False
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    duration = 0.0
    attributes: dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: The one disabled span every ``span()`` call returns when tracing is off.
NULL_SPAN = _NullSpan()


def _default_slow_sink(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


class Tracer:
    """Span factory plus a bounded ring buffer of finished spans.

    Parameters
    ----------
    enabled:
        Master switch.  Off, :meth:`span` returns :data:`NULL_SPAN`.
    buffer_size:
        Finished spans retained (oldest evicted first).
    slow_op_threshold:
        Seconds; finished spans at or above it emit one structured
        slow-op line.  ``None`` disables the log.
    slow_op_sink:
        Where slow-op lines go (default: stderr).
    """

    def __init__(
        self,
        enabled: bool = False,
        buffer_size: int = 512,
        slow_op_threshold: float | None = None,
        slow_op_sink: Callable[[str], None] | None = None,
    ) -> None:
        if buffer_size < 1:
            raise ValueError("buffer_size must be at least 1")
        if slow_op_threshold is not None and slow_op_threshold <= 0:
            raise ValueError("slow_op_threshold must be positive (or None)")
        self.enabled = enabled
        self._spans: deque[Span] = deque(maxlen=buffer_size)
        self._lock = threading.Lock()
        self._slow_threshold = slow_op_threshold
        self._slow_sink = slow_op_sink or _default_slow_sink

    def span(self, name: str, parent: "Span | None" = None):
        """Open a span (enter it with ``with``); no-op when disabled.

        The parent defaults to the context-local current span, so the
        call sites never thread span objects around; pass ``parent``
        only to link work scheduled outside the originating context
        (e.g. a background refinement keyed to its request).
        """
        if not self.enabled:
            return NULL_SPAN
        current = parent if parent is not None else _CURRENT.get()
        if current is not None and current.enabled:
            return Span(self, name, current.trace_id, current.span_id)
        return Span(self, name, _new_id(8), None)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
        threshold = self._slow_threshold
        if threshold is not None and span.duration >= threshold:
            self._slow_sink(
                format_fields(
                    "slow_op",
                    name=span.name,
                    duration_ms=round(span.duration * 1000.0, 3),
                    trace=span.trace_id,
                    span=span.span_id,
                )
            )

    # ------------------------------------------------------------------
    # Reading the buffer
    # ------------------------------------------------------------------

    def spans(self) -> list[Span]:
        """A snapshot of the retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def reset(self) -> None:
        """Drop all retained spans."""
        with self._lock:
            self._spans.clear()

    def trace_spans(self, trace_id: str) -> list[dict[str, object]]:
        """All retained spans of one trace, in start order."""
        spans = [s.to_dict() for s in self.spans() if s.trace_id == trace_id]
        spans.sort(key=lambda s: s["offset"])
        return spans

    def traces(self, limit: int = 10) -> list[dict[str, object]]:
        """The most recent ``limit`` traces, newest first.

        Each entry is ``{"trace_id", "spans"}`` with the spans in start
        order — the ``/trace`` endpoint's payload and the CLI's input.
        """
        if limit < 1:
            raise ValueError("limit must be at least 1")
        grouped: dict[str, list[Span]] = {}
        order: list[str] = []
        for span in self.spans():
            if span.trace_id not in grouped:
                grouped[span.trace_id] = []
                order.append(span.trace_id)
            grouped[span.trace_id].append(span)
        out = []
        for trace_id in reversed(order[-limit:]):
            spans = sorted(grouped[trace_id], key=lambda s: s.start)
            out.append(
                {
                    "trace_id": trace_id,
                    "spans": [s.to_dict() for s in spans],
                }
            )
        return out

    def export_jsonl(self, target: "str | os.PathLike | TextIO") -> int:
        """Write every retained span as one JSON line; returns the count."""
        spans = self.spans()
        if hasattr(target, "write"):
            for span in spans:
                target.write(json.dumps(span.to_dict()) + "\n")
        else:
            with open(target, "w", encoding="utf-8") as handle:
                for span in spans:
                    handle.write(json.dumps(span.to_dict()) + "\n")
        return len(spans)


# ----------------------------------------------------------------------
# The process-global tracer
# ----------------------------------------------------------------------

_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer (disabled until configured)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer."""
    global _TRACER
    _TRACER = tracer
    return tracer


def configure_tracing(
    enabled: bool = True,
    buffer_size: int = 512,
    slow_op_threshold: float | None = None,
    slow_op_sink: Callable[[str], None] | None = None,
) -> Tracer:
    """Replace the global tracer with a freshly configured one."""
    return set_tracer(
        Tracer(
            enabled=enabled,
            buffer_size=buffer_size,
            slow_op_threshold=slow_op_threshold,
            slow_op_sink=slow_op_sink,
        )
    )


def current_span() -> Span | None:
    """The context-local current span (``None`` outside any)."""
    return _CURRENT.get()


# ----------------------------------------------------------------------
# Structured lines and request notes
# ----------------------------------------------------------------------


def format_fields(event: str, **fields: object) -> str:
    """One structured ``event key=value …`` line (logfmt-style).

    Shared by the access log and the slow-op log so both stay grep- and
    machine-parseable; values containing spaces, quotes or ``=`` are
    quoted with inner quotes escaped.
    """
    parts = [event]
    for key, value in fields.items():
        text = str(value)
        if not text or any(c in text for c in ' "=\n'):
            text = '"' + text.replace('"', '\\"').replace("\n", "\\n") + '"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


@contextmanager
def collect_notes() -> Iterator[dict[str, object]]:
    """Collect :func:`note` calls made anywhere under this context.

    The serving layer opens this around a request so deep layers (the
    map builder reporting its cache outcome) can annotate the access-log
    line without knowing the service exists.  The dict travels by
    reference through context copies, so notes written on worker
    threads land in the originating request's mapping.
    """
    fields: dict[str, object] = {}
    token = _NOTES.set(fields)
    try:
        yield fields
    finally:
        _NOTES.reset(token)


def note(key: str, value: object) -> None:
    """Record one field for whoever opened :func:`collect_notes` (if anyone)."""
    fields = _NOTES.get()
    if fields is not None:
        fields[key] = value


# ----------------------------------------------------------------------
# Rendering (the ``blaeu trace`` CLI and tests)
# ----------------------------------------------------------------------


def render_trace(trace: dict[str, object]) -> str:
    """A text tree of one trace, slowest span marked.

    ``trace`` is one entry of :meth:`Tracer.traces` (or the same shape
    re-read from JSONL/the ``/trace`` endpoint).
    """
    spans = list(trace.get("spans", []))  # type: ignore[arg-type]
    if not spans:
        return f"trace {trace.get('trace_id', '?')}: no spans retained"
    by_parent: dict[str | None, list[dict]] = {}
    span_ids = {span["span_id"] for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in span_ids:
            parent = None  # orphan (parent evicted): show at top level
        by_parent.setdefault(parent, []).append(span)
    slowest = max(spans, key=lambda s: s["duration"])
    lines = [f"trace {trace['trace_id']} ({len(spans)} spans)"]

    def emit(parent: str | None, depth: int) -> None:
        for span in sorted(
            by_parent.get(parent, []), key=lambda s: s["offset"]
        ):
            marker = "  ◀ slowest" if span is slowest else ""
            attributes = span.get("attributes") or {}
            suffix = (
                " [" + ", ".join(f"{k}={v}" for k, v in attributes.items()) + "]"
                if attributes
                else ""
            )
            lines.append(
                f"{'  ' * depth}- {span['name']} "
                f"{span['duration'] * 1000.0:.1f} ms{suffix}{marker}"
            )
            emit(span["span_id"], depth + 1)

    emit(None, 1)
    return "\n".join(lines)

"""repro.obs — tracing, unified metrics, and profiling hooks.

The observability subsystem sits at the bottom of the layering
(stdlib-only, no engine imports), so the service, pipeline, cluster,
graph and store layers can all record into it without cycles:

* :mod:`repro.obs.trace` — hierarchical spans with context-local
  propagation, a ring-buffer span store, JSONL export, the slow-op log
  and the structured-line helpers;
* :mod:`repro.obs.metrics` — the process-global metric registry
  (counters, gauges, named and per-route histograms) rendered at
  ``/metrics``;
* :mod:`repro.obs.profile` — the opt-in sampling profiler hooked
  around stage execution.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    Metrics,
    escape_label_value,
    get_metrics,
    reset_metrics,
    set_global_metrics,
)
from repro.obs.profile import (
    SamplingProfiler,
    disable_profiling,
    enable_profiling,
    get_profiler,
    profile_block,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    collect_notes,
    configure_tracing,
    current_span,
    format_fields,
    get_tracer,
    note,
    render_trace,
    set_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "Metrics",
    "NULL_SPAN",
    "SamplingProfiler",
    "Span",
    "Tracer",
    "collect_notes",
    "configure_tracing",
    "current_span",
    "disable_profiling",
    "enable_profiling",
    "escape_label_value",
    "format_fields",
    "get_metrics",
    "get_profiler",
    "get_tracer",
    "note",
    "profile_block",
    "render_trace",
    "reset_metrics",
    "set_global_metrics",
    "set_tracer",
]

"""Theme extraction — vertical clustering of columns (paper §2–3).

A *theme* is "a group of columns which describe the same aspect of the
data" — unemployment statistics, health indicators, labor conditions.
Themes are obtained by partitioning the column dependency graph with PAM;
each theme is named after its medoid column (the most central indicator
of the group).  The theme view also lets users *edit* themes (Figure 5),
so :class:`ThemeSet` supports moving columns and renaming.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import BlaeuConfig
from repro.graph.dependency import DependencyGraph, GraphBuilder
from repro.graph.partition import pam_partition
from repro.table.column import CategoricalColumn
from repro.table.schema import detect_keys
from repro.table.table import Table

__all__ = ["Theme", "ThemeSet", "default_theme_k_grid", "extract_themes"]


def default_theme_k_grid(n_columns: int, max_points: int = 14) -> tuple[int, ...]:
    """A logarithmic candidate grid for the number of themes.

    Dense at small k (where one step changes the picture) and sparse at
    large k, topping out near ``n_columns / 5`` — wide tables carry many
    themes, but never one theme per column or two.
    """
    if n_columns < 3:
        return (2,)
    top = max(3, min(n_columns - 1, round(n_columns / 5) + 2))
    grid: list[int] = []
    value = 2.0
    while round(value) <= top:
        k = round(value)
        if not grid or k > grid[-1]:
            grid.append(k)
        value *= 1.35
    if grid[-1] != top:
        grid.append(top)
    if len(grid) > max_points:
        picks = {
            grid[round(i * (len(grid) - 1) / (max_points - 1))]
            for i in range(max_points)
        }
        grid = sorted(picks)
    return tuple(grid)


@dataclass(frozen=True)
class Theme:
    """One group of mutually dependent columns."""

    name: str
    columns: tuple[str, ...]
    cohesion: float

    @property
    def size(self) -> int:
        """Number of columns in the theme."""
        return len(self.columns)

    def __contains__(self, column: object) -> bool:
        return column in self.columns


@dataclass(frozen=True)
class ThemeSet:
    """All themes of a table, plus the evidence they were built from."""

    themes: tuple[Theme, ...]
    graph: DependencyGraph
    silhouette: float
    k_scores: dict[int, float] = field(default_factory=dict)
    excluded_keys: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.themes)

    def __iter__(self):
        return iter(self.themes)

    def __getitem__(self, index: int) -> Theme:
        return self.themes[index]

    def theme(self, name: str) -> Theme:
        """The theme called ``name``; raises ``KeyError`` when absent."""
        for theme in self.themes:
            if theme.name == name:
                return theme
        raise KeyError(
            f"no theme named {name!r}; available: {[t.name for t in self.themes]}"
        )

    def theme_of(self, column: str) -> Theme:
        """The theme containing ``column``."""
        for theme in self.themes:
            if column in theme.columns:
                return theme
        raise KeyError(f"column {column!r} belongs to no theme")

    def names(self) -> tuple[str, ...]:
        """All theme names, largest theme first."""
        return tuple(theme.name for theme in self.themes)

    # ------------------------------------------------------------------
    # Editing (Figure 5: "users can browse and edit the themes")
    # ------------------------------------------------------------------

    def move_column(self, column: str, target_theme: str) -> "ThemeSet":
        """A new ThemeSet with ``column`` moved into ``target_theme``.

        Empty source themes disappear.  Cohesion values are recomputed
        from the dependency graph.
        """
        source = self.theme_of(column)
        target = self.theme(target_theme)
        if source.name == target.name:
            return self
        updated: list[Theme] = []
        for theme in self.themes:
            if theme.name == source.name:
                remaining = tuple(c for c in theme.columns if c != column)
                if not remaining:
                    continue
                updated.append(
                    Theme(
                        name=remaining[0],
                        columns=remaining,
                        cohesion=_cohesion(self.graph, remaining),
                    )
                )
            elif theme.name == target.name:
                extended = theme.columns + (column,)
                updated.append(replace(
                    theme,
                    columns=extended,
                    cohesion=_cohesion(self.graph, extended),
                ))
            else:
                updated.append(theme)
        return replace(self, themes=tuple(updated))

    def rename_theme(self, old: str, new: str) -> "ThemeSet":
        """A new ThemeSet with one theme renamed (columns unchanged)."""
        if any(t.name == new for t in self.themes):
            raise ValueError(f"a theme named {new!r} already exists")
        self.theme(old)  # raise KeyError when absent
        updated = tuple(
            replace(t, name=new) if t.name == old else t for t in self.themes
        )
        return replace(self, themes=updated)


def extract_themes(
    table: Table,
    config: BlaeuConfig | None = None,
    rng: np.random.Generator | None = None,
    columns: tuple[str, ...] | None = None,
    builder: GraphBuilder | None = None,
    row_indices: np.ndarray | None = None,
) -> ThemeSet:
    """Detect the themes of a table.

    Keys are excluded (they depend on nothing), the dependency graph is
    estimated from a row sample, and PAM partitions it with k chosen by
    the silhouette over ``config.theme_k_values``.

    ``builder`` is the engine's shared :class:`GraphBuilder` (one is
    created ad hoc when omitted): it reuses cached column codes across
    navigation and memoizes finished graphs when a result cache is
    installed.  ``row_indices`` restricts theme detection to those
    base-table rows — the themes *of the current selection* — and is
    where the code reuse pays off: the selection's codes are a row
    gather, not a re-discretization.  Store-backed tables never
    materialize in full: sampled rows are pushdown-gathered, and
    whole-table builds stream chunked scans.
    """
    config = config or BlaeuConfig()
    rng = rng or np.random.default_rng(config.seed)
    builder = builder or GraphBuilder()

    candidates = list(columns) if columns is not None else list(table.column_names)
    keys = set(detect_keys(table))
    # Near-key categoricals (e.g. 1,500 region names) carry identity, not
    # structure — exclude them just like the preprocessing stage does.
    for column in table.columns:
        if (
            column.name in candidates
            and isinstance(column, CategoricalColumn)
            and column.n_distinct() > config.max_categorical_cardinality
        ):
            keys.add(column.name)
    kept = tuple(c for c in candidates if c not in keys)
    excluded = tuple(c for c in candidates if c in keys)
    if len(kept) < 2:
        raise ValueError(
            "theme extraction needs at least two non-key columns; "
            f"got {list(kept)} (keys excluded: {list(excluded)})"
        )

    graph = builder.build(
        table,
        columns=kept,
        measure="nmi",
        sample=config.dependency_sample_size,
        rng=rng,
        seed=config.seed,
        row_indices=row_indices,
        n_jobs=config.graph_jobs,
        bin_sample_size=config.graph_bin_sample_size,
    )
    k_values = config.theme_k_values
    if k_values is None:
        k_values = default_theme_k_grid(len(kept))
    groups, selection = pam_partition(graph, k_values=k_values, rng=rng)

    themes = tuple(
        Theme(
            name=group[0],
            columns=tuple(group),
            cohesion=_cohesion(graph, tuple(group)),
        )
        for group in sorted(groups, key=lambda g: (-len(g), g[0]))
    )
    return ThemeSet(
        themes=themes,
        graph=graph,
        silhouette=selection.best.silhouette,
        k_scores=selection.scores(),
        excluded_keys=excluded,
    )


def _cohesion(graph: DependencyGraph, columns: tuple[str, ...]) -> float:
    """Mean pairwise dependency inside a column group (1.0 for singletons).

    Vectorized over the graph's weight matrix: one fancy-indexed
    submatrix instead of O(m²) scalar ``weight()`` lookups — this runs
    per theme on every extraction *and* on every interactive theme edit,
    where wide tables (hundreds of columns) made the loop noticeable.
    """
    if len(columns) < 2:
        return 1.0
    index = {name: i for i, name in enumerate(graph.columns)}
    rows = np.asarray([index[name] for name in columns], dtype=np.intp)
    block = graph.weights[np.ix_(rows, rows)]
    m = rows.size
    # Sum of the strict upper triangle over the number of pairs.
    return float((block.sum() - np.trace(block)) / (m * (m - 1)))

"""Blaeu's core: themes, data maps, navigation, the engine facade.

This package is the paper's primary contribution — everything else in
the repository is substrate for it.  See DESIGN.md for the module map.
"""

from repro.core.config import BlaeuConfig, ExplorationConfig
from repro.core.datamap import DataMap, Region
from repro.core.engine import Blaeu
from repro.core.insights import InsightReport, region_insights
from repro.core.mapping import build_map
from repro.core.navigation import ExplorationState, Explorer, Highlight
from repro.core.pipeline import MapBuilder, MapBuildError, MapPipeline
from repro.core.preprocess import FeatureSpace, preprocess
from repro.core.queries import QuantizedQuery, quantized_queries, state_to_sql
from repro.core.themes import Theme, ThemeSet, extract_themes

__all__ = [
    "Blaeu",
    "BlaeuConfig",
    "DataMap",
    "ExplorationConfig",
    "ExplorationState",
    "Explorer",
    "FeatureSpace",
    "Highlight",
    "InsightReport",
    "MapBuildError",
    "MapBuilder",
    "MapPipeline",
    "QuantizedQuery",
    "Region",
    "Theme",
    "ThemeSet",
    "build_map",
    "extract_themes",
    "preprocess",
    "quantized_queries",
    "region_insights",
    "state_to_sql",
]

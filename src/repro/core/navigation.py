"""The four navigational actions: zoom, highlight, project, rollback (§2).

An :class:`Explorer` is the session-level state machine.  Every state is
the triple *(selection predicate, active columns, data map)*; zooming and
projecting push new states, rollback pops, and highlight inspects without
changing state.  "Each action is reversible, and the users can always go
back to a previous state of the system with a rollback."
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import BlaeuConfig
from repro.core.datamap import DataMap
from repro.core.pipeline import MapBuilder
from repro.core.themes import Theme, ThemeSet, extract_themes
from repro.graph.dependency import GraphBuilder
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.predicates import And, Everything, Predicate
from repro.table.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.insights import InsightReport
    from repro.guide.recommend import Suggestion

__all__ = ["Explorer", "ExplorationState", "Highlight"]


@dataclass(frozen=True)
class ExplorationState:
    """One immutable point in the exploration history."""

    selection: Predicate
    columns: tuple[str, ...]
    map: DataMap
    action: str

    @property
    def n_rows(self) -> int:
        """Tuples in this state's selection."""
        return self.map.n_rows


@dataclass(frozen=True)
class Highlight:
    """The result of highlighting a region (paper: inspect its tuples).

    Contains a bounded tuple preview plus per-column summaries —
    histograms for numeric columns, value counts for categorical ones —
    the data behind the "classic univariate and bivariate visualization
    methods" the prototype offers.
    """

    region_id: str
    columns: tuple[str, ...]
    n_rows: int
    preview: tuple[dict[str, object], ...]
    numeric_summaries: dict[str, dict[str, float]] = field(default_factory=dict)
    category_counts: dict[str, dict[str, int]] = field(default_factory=dict)


def _numeric_summary(column: NumericColumn) -> dict[str, float]:
    """The univariate statistics a highlight reports for one column."""
    return {
        "min": column.min(),
        "max": column.max(),
        "mean": column.mean(),
        "median": column.median(),
        "std": column.std(),
    }


class Explorer:
    """Interactive navigation over one table.

    Parameters
    ----------
    table:
        The table to explore.
    config:
        Engine knobs.
    themes:
        Pre-extracted themes (otherwise computed lazily on first access).
    map_cache:
        Optional shared result cache (``get(key)``/``put(key, value)``).
        When set, maps for (table content, config, action path) triples
        already built — by this session or any other sharing the cache —
        are reused instead of re-clustered.
    graph_builder:
        Optional shared :class:`~repro.graph.dependency.GraphBuilder`.
        When the engine passes its builder, theme extraction across all
        sessions shares one column-code cache and (if a result cache is
        installed) one graph memo; otherwise this session gets a
        private builder.
    map_builder:
        Optional shared :class:`~repro.core.pipeline.MapBuilder`.  When
        the engine passes its builder, map construction across all
        sessions shares one staged pipeline (sample / feature-space /
        distance / clustering / description artifacts plus finished
        maps); otherwise this session gets a private builder over
        ``map_cache``.
    """

    def __init__(
        self,
        table: Table,
        config: BlaeuConfig | None = None,
        themes: ThemeSet | None = None,
        map_cache: object | None = None,
        graph_builder: GraphBuilder | None = None,
        map_builder: MapBuilder | None = None,
    ) -> None:
        self._table = table
        self._config = config or BlaeuConfig()
        self._rng = np.random.default_rng(self._config.seed)
        self._themes = themes
        self._graph_builder = graph_builder or GraphBuilder()
        self._map_builder = map_builder or MapBuilder(result_cache=map_cache)
        self._stack: list[ExplorationState] = []
        self._observers: list[object] = []

    # ------------------------------------------------------------------
    # Observers (navigation-trace recording)
    # ------------------------------------------------------------------

    def add_observer(self, observer) -> None:
        """Register a ``(action, target)`` callback fired after each
        completed navigation action (see :mod:`repro.guide.trace`)."""
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously registered observer (no-op when absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def _notify(self, action: str, target: str) -> None:
        for observer in list(self._observers):
            observer(action, target)

    # ------------------------------------------------------------------
    # Themes
    # ------------------------------------------------------------------

    @property
    def table(self) -> Table:
        """The table under exploration."""
        return self._table

    @property
    def config(self) -> BlaeuConfig:
        """The engine configuration."""
        return self._config

    @property
    def graph_builder(self) -> GraphBuilder:
        """The dependency-graph builder (shared when the engine provides it)."""
        return self._graph_builder

    @property
    def map_builder(self) -> MapBuilder:
        """The map-pipeline builder (shared when the engine provides it)."""
        return self._map_builder

    def themes(self) -> ThemeSet:
        """The table's themes (computed once, then cached)."""
        if self._themes is None:
            self._themes = extract_themes(
                self._table,
                config=self._config,
                rng=self._rng,
                builder=self._graph_builder,
            )
        return self._themes

    def local_themes(self) -> ThemeSet:
        """Themes of the *current selection* (a navigation deep-dive).

        Re-examines which columns move together inside the zoomed-in
        tuples — sub-populations often couple indicators differently
        than the whole table does.  Navigation-aware: the selection's
        column codes are gathered from the builder's cache by row index
        (no re-discretization), and repeated visits to the same
        selection hit the graph memo when a result cache is installed.

        Randomness derives from ``(config.seed, selection digest)``,
        never from the session stream: inspecting a selection is
        read-only, repeatable, and leaves every later map in the
        session exactly as it would have been without the deep-dive.
        """
        import hashlib

        state = self.state
        scan_mask = getattr(self._table, "scan_mask", None)
        if scan_mask is not None:  # store-backed: pushdown evaluation
            mask = scan_mask(state.selection)
        else:
            mask = state.selection.mask(self._table)
        indices = np.flatnonzero(mask)
        digest = hashlib.sha256(
            np.ascontiguousarray(indices, dtype=np.int64).tobytes()
        ).digest()
        rng = np.random.default_rng(
            (self._config.seed, int.from_bytes(digest[:8], "big"))
        )
        return extract_themes(
            self._table,
            config=self._config,
            rng=rng,
            builder=self._graph_builder,
            row_indices=indices,
        )

    def set_themes(self, themes: ThemeSet) -> None:
        """Replace the theme set (after user edits in the theme view)."""
        self._themes = themes

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def state(self) -> ExplorationState:
        """The current exploration state."""
        if not self._stack:
            raise RuntimeError(
                "no active map; call open_theme() or open_columns() first"
            )
        return self._stack[-1]

    @property
    def depth(self) -> int:
        """Number of states on the stack (0 before the first map)."""
        return len(self._stack)

    def history(self) -> tuple[str, ...]:
        """The actions taken so far, oldest first."""
        return tuple(state.action for state in self._stack)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def open_theme(self, theme: str | int | Theme) -> DataMap:
        """Select a theme and build the initial map over the whole table."""
        resolved = self._resolve_theme(theme)
        data_map = self._push(
            selection=Everything(),
            columns=resolved.columns,
            action=f"open theme {resolved.name!r}",
        )
        self._notify("open_theme", resolved.name)
        return data_map

    def open_columns(self, columns: tuple[str, ...]) -> DataMap:
        """Build the initial map over an explicit column set."""
        for name in columns:
            self._table.column(name)
        data_map = self._push(
            selection=Everything(),
            columns=tuple(columns),
            action=f"open columns {list(columns)}",
        )
        self._notify("open_columns", ",".join(columns))
        return data_map

    def zoom(self, region_id: str) -> DataMap:
        """Drill down into a region: re-cluster inside it (paper Fig. 1c).

        The region's predicate is conjoined with the current selection
        and a fresh map is built over the same columns.
        """
        state = self.state
        region = state.map.region(region_id)
        new_selection = And.of(state.selection, region.predicate)
        n_rows = int(new_selection.mask(self._table).sum())
        if n_rows < self._config.min_zoom_rows:
            raise ValueError(
                f"region {region_id!r} holds {n_rows} tuples; at least "
                f"{self._config.min_zoom_rows} are needed to zoom"
            )
        data_map = self._push(
            selection=new_selection,
            columns=state.columns,
            action=f"zoom into {region_id} ({region.label})",
        )
        self._notify("zoom", region_id)
        return data_map

    def project(self, theme: str | int | Theme) -> DataMap:
        """Re-map the current selection with another theme's columns (Fig. 1d)."""
        state = self.state
        resolved = self._resolve_theme(theme)
        data_map = self._push(
            selection=state.selection,
            columns=resolved.columns,
            action=f"project onto theme {resolved.name!r}",
        )
        self._notify("project", resolved.name)
        return data_map

    def project_columns(self, columns: tuple[str, ...]) -> DataMap:
        """Re-map the current selection with an explicit column set."""
        state = self.state
        for name in columns:
            self._table.column(name)
        data_map = self._push(
            selection=state.selection,
            columns=tuple(columns),
            action=f"project onto columns {list(columns)}",
        )
        self._notify("project_columns", ",".join(columns))
        return data_map

    def highlight(
        self,
        region_id: str,
        columns: tuple[str, ...] | None = None,
    ) -> Highlight:
        """Inspect the tuples of a region without changing state (Fig. 1c).

        Returns a bounded preview plus univariate summaries for the
        requested columns (default: the active columns).  On
        store-backed tables the summaries come from **one chunked
        pushdown scan over only the highlighted columns** — the full
        selection is never materialized and non-highlighted columns are
        never read.
        """
        state = self.state
        region = state.map.region(region_id)
        predicate = And.of(state.selection, region.predicate)
        inspect = tuple(columns) if columns else state.columns
        if getattr(self._table, "iter_chunks", None) is not None:
            return self._highlight_store(region_id, predicate, inspect)
        rows = self._table.select(predicate)
        for name in inspect:
            self._table.column(name)

        preview_rows = rows.head(self._config.highlight_preview_rows)
        preview = tuple(
            {name: row[name] for name in inspect}
            for row in preview_rows.rows()
        )

        numeric_summaries: dict[str, dict[str, float]] = {}
        category_counts: dict[str, dict[str, int]] = {}
        for name in inspect:
            column = rows.column(name)
            if isinstance(column, NumericColumn):
                numeric_summaries[name] = _numeric_summary(column)
            elif isinstance(column, CategoricalColumn):
                category_counts[name] = column.value_counts()
        return Highlight(
            region_id=region_id,
            columns=inspect,
            n_rows=rows.n_rows,
            preview=preview,
            numeric_summaries=numeric_summaries,
            category_counts=category_counts,
        )

    def _highlight_store(
        self,
        region_id: str,
        predicate: Predicate,
        inspect: tuple[str, ...],
    ) -> Highlight:
        """The store-backed highlight: chunked pushdown, no full gather.

        The predicate is evaluated by :meth:`~repro.store.StoredTable.
        scan_mask` (reads only the predicate's columns), then one
        chunked scan over just the ``inspect`` columns accumulates the
        per-column summaries — matched numeric cells for the order
        statistics, per-chunk ``bincount`` totals for the categorical
        value counts — and the bounded tuple preview.  Results are
        identical to the in-memory path on the same rows.
        """
        table = self._table
        for name in inspect:
            if not table.has_column(name):
                raise KeyError(
                    f"table {table.name!r} has no column {name!r}; "
                    f"available: {list(table.column_names)}"
                )
        mask = table.scan_mask(predicate)
        n_rows = int(mask.sum())
        preview_cap = self._config.highlight_preview_rows
        preview: list[dict[str, object]] = []
        # Accumulators are seeded from the manifest for every inspected
        # column, so a region matching zero rows still reports the same
        # (NaN summaries / empty counts) shape as the in-memory path.
        numeric_parts: dict[str, list[NumericColumn]] = {}
        category_codes: dict[str, np.ndarray] = {}
        categories: dict[str, tuple[str, ...]] = {}
        for name in inspect:
            if table.kind(name).value == "numeric":
                numeric_parts[name] = []
            else:
                categories[name] = table.categories(name)
                category_codes[name] = np.zeros(
                    len(categories[name]), dtype=np.int64
                )
        partitions = getattr(table, "partitions", ())
        scan_jobs = getattr(table, "scan_jobs", None)
        if scan_jobs not in (None, 1) and len(partitions) > 1:
            # Partition-parallel accumulation: numeric matches
            # concatenate and code counts sum in partition order, and
            # each worker over-collects up to the preview cap so the
            # first ``preview_cap`` matches overall are always present
            # — all three merges reproduce the serial loop exactly.
            from repro.store.parallel import (
                highlight_task,
                run_partition_tasks,
            )

            results = run_partition_tasks(
                highlight_task,
                [
                    (
                        str(table.root),
                        inspect,
                        mask[partition.start : partition.stop],
                        partition.start,
                        partition.stop,
                        table.chunk_rows,
                        preview_cap,
                    )
                    for partition in partitions
                ],
                scan_jobs,
            )
            for (parts, code_counts, rows), _, _ in results:
                for name, chunks in parts.items():
                    numeric_parts[name].extend(chunks)
                for name, counts in code_counts.items():
                    category_codes[name] += counts
                preview.extend(rows[: max(preview_cap - len(preview), 0)])
        else:
            for start, stop, chunk in table.iter_chunks(columns=inspect):
                matched = np.flatnonzero(mask[start:stop])
                if matched.size == 0:
                    continue
                chunk_columns = {name: chunk.column(name) for name in inspect}
                for name, column in chunk_columns.items():
                    if isinstance(column, NumericColumn):
                        numeric_parts[name].append(column.take(matched))
                    elif isinstance(column, CategoricalColumn):
                        codes = column.codes[matched]
                        category_codes[name] += np.bincount(
                            codes[codes >= 0], minlength=len(column.categories)
                        )
                for local in matched[: max(preview_cap - len(preview), 0)]:
                    preview.append(
                        {
                            name: column.value_at(int(local))
                            for name, column in chunk_columns.items()
                        }
                    )

        numeric_summaries = {
            name: _numeric_summary(
                NumericColumn(
                    name,
                    np.concatenate([part.values for part in parts])
                    if parts
                    else np.empty(0, dtype=np.float64),
                    np.concatenate([part.missing_mask for part in parts])
                    if parts
                    else np.empty(0, dtype=bool),
                )
            )
            for name, parts in numeric_parts.items()
        }
        category_counts: dict[str, dict[str, int]] = {}
        for name, counts in category_codes.items():
            pairs = [
                (categories[name][code], int(n))
                for code, n in enumerate(counts)
                if n > 0
            ]
            pairs.sort(key=lambda item: (-item[1], item[0]))
            category_counts[name] = dict(pairs)
        return Highlight(
            region_id=region_id,
            columns=inspect,
            n_rows=n_rows,
            preview=tuple(preview),
            numeric_summaries=numeric_summaries,
            category_counts=category_counts,
        )

    def rollback(self) -> DataMap:
        """Undo the latest zoom/project/open; returns the restored map."""
        if len(self._stack) < 2:
            raise RuntimeError("nothing to roll back to")
        self._stack.pop()
        self._notify("rollback", "")
        return self.state.map

    # ------------------------------------------------------------------
    # Approximate → exact refinement
    # ------------------------------------------------------------------

    @property
    def needs_refine(self) -> bool:
        """Whether the current map still carries approximate counts."""
        return bool(self._stack) and self.state.map.counts_status != "exact"

    def refine(self) -> DataMap:
        """Upgrade the current map to exact region counts.

        With ``count_mode="approximate"`` navigation actions return
        immediately with sample-extrapolated counts; this runs the exact
        chunked routing pass over the full selection (through the shared
        builder, so another session's refinement — or a cached exact
        build — is reused), swaps the state's map, and returns it.  The
        result is bit-identical to a blocking exact build.  No-op on
        already-exact maps.
        """
        state = self.state
        if state.map.counts_status == "exact":
            return state.map
        exact = self._map_builder.refine(
            self._table,
            state.columns,
            config=self._config,
            selection=state.selection,
            current_map=state.map,
        )
        if exact is not state.map:
            self._stack[-1] = replace(state, map=exact)
        return exact

    def states(self) -> tuple[ExplorationState, ...]:
        """All states on the stack, oldest first (for the history panel)."""
        return tuple(self._stack)

    def goto(self, index: int) -> DataMap:
        """Roll back to the state at ``index`` (0 = the first map).

        A multi-step rollback: everything after ``index`` is discarded.
        """
        if not 0 <= index < len(self._stack):
            raise IndexError(
                f"state {index} out of range [0, {len(self._stack)})"
            )
        del self._stack[index + 1 :]
        self._notify("goto", str(index))
        return self.state.map

    def insights(self, region_id: str) -> "InsightReport":
        """Why is this region distinct from the rest of the selection?

        Contrasts the region's column distributions (numeric effect
        sizes, categorical lifts) against its siblings — the narrative
        the demo's "insights and serendipity" goal asks for.
        """
        from repro.core.insights import region_insights

        state = self.state
        region = state.map.region(region_id)
        selection = self._table.select(state.selection)
        return region_insights(selection, region.predicate)

    def suggest(self, limit: int = 5) -> "list[Suggestion]":
        """Ranked next actions for the current state (guided exploration).

        Before the first map: which theme to open.  Afterwards: which
        region to zoom into, which theme to project onto, which k to
        re-cluster with — scored from insight divergence, per-region
        silhouettes and dependency-graph weights.  A pure read
        (deterministic for a fixed state; no map is built, no state
        changes); see :mod:`repro.guide.recommend`.
        """
        from repro.guide.recommend import suggest_actions

        return suggest_actions(self, limit=limit)

    # ------------------------------------------------------------------
    # Implicit query
    # ------------------------------------------------------------------

    def sql(self, region_id: str | None = None) -> str:
        """The Select-Project query the user has implicitly written.

        With ``region_id``, the query of that region; otherwise the query
        of the current selection.
        """
        from repro.core.queries import state_to_sql

        state = self.state
        predicate = state.selection
        if region_id is not None:
            region = state.map.region(region_id)
            predicate = And.of(predicate, region.predicate)
        return state_to_sql(self._table.name, predicate, state.columns)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve_theme(self, theme: str | int | Theme) -> Theme:
        if isinstance(theme, Theme):
            return theme
        themes = self.themes()
        if isinstance(theme, int):
            return themes[theme]
        return themes.theme(theme)

    def _push(
        self,
        selection: Predicate,
        columns: tuple[str, ...],
        action: str,
    ) -> DataMap:
        data_map = self._map_builder.build(
            self._table,
            columns,
            config=self._config,
            rng=self._rng,
            selection=selection,
        )
        self._stack.append(
            ExplorationState(
                selection=selection,
                columns=columns,
                map=data_map,
                action=action,
            )
        )
        return data_map

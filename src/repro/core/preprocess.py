"""Stage 1 of the mapping pipeline: preprocessing (paper §3, Figure 3).

"Blaeu removes the primary keys, it normalizes the continuous variables,
and it introduces dummy binary variables to represent the categorical
data (each dummy variable corresponds to one category).  The result of
this operation is a set of vectors, where each vector represents a tuple
in the database."

Additions the paper implies but does not spell out, documented here:

* missing numeric cells are imputed with the column mean (0 after
  z-scoring) so the vectors are NaN-free for Euclidean PAM;
* missing categorical cells become the all-zero dummy block;
* categorical columns whose cardinality exceeds a cap are excluded from
  the feature matrix (a 1,500-label region-name column is a key in
  disguise; dummy-coding it would both explode dimensionality and let
  identity swamp structure).  Excluded columns are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stats.normalize import ScalerStats, zscore
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.schema import detect_keys
from repro.table.table import Table

__all__ = ["FeatureSpace", "preprocess"]


@dataclass(frozen=True)
class FeatureSpace:
    """The vector representation of a table plus the mapping back.

    Attributes
    ----------
    matrix:
        n×d float64 feature matrix, NaN-free.
    feature_names:
        One name per matrix column (``col`` for numeric, ``col=label``
        for dummies).
    numeric_mask:
        Per-feature flag: True for scaled numeric features.
    source_columns:
        Table column behind each feature.
    scalers:
        Fitted normalization statistics per numeric column (for
        inverse-transforming medoid coordinates in reports).
    dropped_keys:
        Columns removed as primary keys.
    dropped_wide:
        Categorical columns excluded for excessive cardinality.
    """

    matrix: np.ndarray
    feature_names: tuple[str, ...]
    numeric_mask: np.ndarray
    source_columns: tuple[str, ...]
    scalers: dict[str, ScalerStats] = field(default_factory=dict)
    dropped_keys: tuple[str, ...] = ()
    dropped_wide: tuple[str, ...] = ()

    @property
    def n_rows(self) -> int:
        """Number of vectors (table rows)."""
        return int(self.matrix.shape[0])

    @property
    def n_features(self) -> int:
        """Dimensionality of the vectors."""
        return int(self.matrix.shape[1])

    def features_of(self, column: str) -> list[int]:
        """Indices of the matrix columns derived from ``column``."""
        return [
            i for i, source in enumerate(self.source_columns) if source == column
        ]

    @property
    def used_columns(self) -> tuple[str, ...]:
        """Table columns that contributed at least one feature."""
        seen: list[str] = []
        for source in self.source_columns:
            if source not in seen:
                seen.append(source)
        return tuple(seen)


def preprocess(
    table: Table,
    columns: tuple[str, ...] | None = None,
    max_categorical_cardinality: int = 50,
    drop_keys: bool = True,
) -> FeatureSpace:
    """Turn (a column subset of) a table into clustering vectors.

    Parameters
    ----------
    table:
        Source rows (typically the interaction-time sample).
    columns:
        Columns to encode (default: all).  Key columns are removed from
        this set when ``drop_keys`` is true.
    max_categorical_cardinality:
        Exclusion cap for wide categoricals (see module docstring).
    drop_keys:
        Whether to run primary-key detection and drop matches.
    """
    names = list(columns) if columns is not None else list(table.column_names)
    for name in names:
        table.column(name)  # fail fast on unknown columns

    dropped_keys: tuple[str, ...] = ()
    if drop_keys:
        keys = set(detect_keys(table)) & set(names)
        dropped_keys = tuple(n for n in names if n in keys)
        names = [n for n in names if n not in keys]

    blocks: list[np.ndarray] = []
    feature_names: list[str] = []
    numeric_flags: list[bool] = []
    source_columns: list[str] = []
    scalers: dict[str, ScalerStats] = {}
    dropped_wide: list[str] = []

    for name in names:
        column = table.column(name)
        if isinstance(column, NumericColumn):
            scaled, stats = zscore(column.values)
            scaled = np.nan_to_num(scaled, nan=0.0)  # mean imputation
            blocks.append(scaled[:, None])
            feature_names.append(name)
            numeric_flags.append(True)
            source_columns.append(name)
            scalers[name] = stats
        elif isinstance(column, CategoricalColumn):
            compacted = column.compact()
            categories = compacted.categories
            if len(categories) > max_categorical_cardinality:
                dropped_wide.append(name)
                continue
            if not categories:
                # all-missing column: contributes nothing
                dropped_wide.append(name)
                continue
            dummies = np.zeros(
                (len(compacted), len(categories)), dtype=np.float64
            )
            present = compacted.present_mask
            rows = np.flatnonzero(present)
            dummies[rows, compacted.codes[rows]] = 1.0
            blocks.append(dummies)
            for label in categories:
                feature_names.append(f"{name}={label}")
                numeric_flags.append(False)
                source_columns.append(name)
        else:  # pragma: no cover - only two column kinds exist
            raise TypeError(f"unsupported column type {type(column).__name__}")

    if not blocks:
        raise ValueError(
            "preprocessing produced no features: all candidate columns were "
            f"keys ({list(dropped_keys)}) or too wide ({dropped_wide})"
        )
    matrix = np.hstack(blocks)
    return FeatureSpace(
        matrix=matrix,
        feature_names=tuple(feature_names),
        numeric_mask=np.asarray(numeric_flags, dtype=bool),
        source_columns=tuple(source_columns),
        scalers=scalers,
        dropped_keys=dropped_keys,
        dropped_wide=tuple(dropped_wide),
    )

"""The data map model (paper §2, Figure 1).

A :class:`DataMap` is an interactive visualization *model*: a hierarchy of
:class:`Region` nodes mirroring the description tree.  Leaves are the
clusters; internal regions carry the split condition that separates their
children ("% employees working long hours >= 20").  Each region knows its
predicate (relative to the map's selection), its exact tuple count over
the full selection, and a representative tuple (the cluster medoid) for
leaves.

The map is serializable to plain dicts — that is the payload the NodeJS
tier would relay to the D3 client in the paper's architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.table.predicates import Everything, Predicate

__all__ = ["Region", "DataMap"]


@dataclass
class Region:
    """A node of the map hierarchy.

    Attributes
    ----------
    region_id:
        Stable identifier within its map ("r", "r0", "r01", … — the path
        from the root encoded digit by digit).
    label:
        Human-readable condition that carved this region out of its
        parent ("Average Income < 22"); the root is "all rows".
    predicate:
        Conjunction of all conditions from the root (relative to the
        map's selection, not the whole table).
    n_rows:
        Exact number of tuples of the map's selection in this region.
    cluster:
        Cluster id for leaf regions, ``None`` for internal regions.
    silhouette:
        Mean silhouette of the cluster (leaves only; ``None`` elsewhere).
    exemplar:
        Medoid tuple of the cluster as a column → value dict (leaves).
    n_rows_error:
        95% error bound on ``n_rows`` when the map's counts are
        sample-extrapolated (``None`` once counts are exact).
    children:
        Sub-regions (empty for leaves).
    """

    region_id: str
    label: str
    predicate: Predicate
    n_rows: int
    depth: int
    cluster: int | None = None
    silhouette: float | None = None
    exemplar: dict[str, object] = field(default_factory=dict)
    n_rows_error: int | None = None
    children: list["Region"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether this region is an undivided cluster."""
        return not self.children

    def walk(self) -> Iterator["Region"]:
        """Pre-order traversal of this region and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def fraction_of(self, total: int) -> float:
        """This region's share of ``total`` tuples (its *area* on the map)."""
        if total <= 0:
            return 0.0
        return self.n_rows / total

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (recursive)."""
        out: dict[str, object] = {
            "id": self.region_id,
            "label": self.label,
            "sql": self.predicate.to_sql(),
            "n_rows": self.n_rows,
            "depth": self.depth,
        }
        if self.cluster is not None:
            out["cluster"] = self.cluster
        if self.silhouette is not None:
            out["silhouette"] = round(self.silhouette, 4)
        if self.n_rows_error is not None:
            out["n_rows_error"] = self.n_rows_error
        if self.exemplar:
            out["exemplar"] = dict(self.exemplar)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


@dataclass
class DataMap:
    """A complete data map over one selection and one column set.

    Attributes
    ----------
    root:
        The region hierarchy; ``root.n_rows`` is the selection size.
    columns:
        The active columns (the theme) the map was built on.
    k:
        Number of clusters (leaf regions).
    silhouette:
        Monte-Carlo silhouette of the underlying clustering.
    fidelity:
        Fraction of sampled tuples for which the description tree agrees
        with the clustering (the "loss of accuracy" of the description
        stage; 1.0 = perfect).
    sample_size:
        Tuples actually clustered (≤ selection size).
    counts_status:
        ``"exact"`` when every region's ``n_rows`` was counted by
        routing the full selection through the description tree;
        ``"approximate"`` when counts are extrapolated from the sample
        (each region then carries an ``n_rows_error`` bound) and an
        exact refinement pass is still outstanding.
    refinement:
        Private context for the approximate→exact count upgrade (the
        fitted description tree); ``None`` on exact maps.  Never
        serialized.
    """

    root: Region
    columns: tuple[str, ...]
    k: int
    silhouette: float
    fidelity: float
    sample_size: int
    counts_status: str = "exact"
    refinement: object | None = field(default=None, repr=False, compare=False)

    @property
    def n_rows(self) -> int:
        """Size of the mapped selection."""
        return self.root.n_rows

    def regions(self) -> list[Region]:
        """All regions, pre-order (root first)."""
        return list(self.root.walk())

    def leaves(self) -> list[Region]:
        """The cluster regions, in hierarchy order."""
        return [region for region in self.root.walk() if region.is_leaf]

    def region(self, region_id: str) -> Region:
        """Look a region up by id; raises ``KeyError`` when absent."""
        for candidate in self.root.walk():
            if candidate.region_id == region_id:
                return candidate
        raise KeyError(
            f"no region {region_id!r}; available: "
            f"{[r.region_id for r in self.root.walk()]}"
        )

    def region_of_cluster(self, cluster: int) -> Region:
        """The leaf region of cluster ``cluster``."""
        for leaf in self.leaves():
            if leaf.cluster == cluster:
                return leaf
        raise KeyError(f"no leaf region for cluster {cluster}")

    def to_dict(self) -> dict[str, object]:
        """JSON-ready payload (what the web tier would ship to D3)."""
        return {
            "columns": list(self.columns),
            "k": self.k,
            "n_rows": self.n_rows,
            "sample_size": self.sample_size,
            "silhouette": round(self.silhouette, 4),
            "fidelity": round(self.fidelity, 4),
            "counts_status": self.counts_status,
            "root": self.root.to_dict(),
        }


def region_predicate(region: Region) -> Predicate:
    """The region's predicate (kept for API symmetry; see ``Region.predicate``)."""
    return region.predicate if region.predicate is not None else Everything()

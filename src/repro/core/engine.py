"""The Blaeu facade: one object from CSV to navigable maps.

Ties the catalog (:class:`~repro.table.database.Database`), theme
extraction, map building and navigation together behind the API a
downstream user starts from::

    from repro import Blaeu

    engine = Blaeu()
    engine.load_csv("countries.csv")
    explorer = engine.explore("countries")
    for theme in explorer.themes():
        print(theme.name, theme.columns)
    data_map = explorer.open_theme(0)
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.config import BlaeuConfig
from repro.core.datamap import DataMap
from repro.core.navigation import Explorer
from repro.core.pipeline import MapBuilder
from repro.core.themes import ThemeSet, extract_themes
from repro.graph.dependency import GraphBuilder
from repro.table.database import Database
from repro.table.table import Table

__all__ = ["Blaeu"]


class Blaeu:
    """The top-level engine: catalog + mapping + navigation sessions."""

    def __init__(
        self,
        config: BlaeuConfig | None = None,
        map_cache: object | None = None,
    ) -> None:
        self._config = config or BlaeuConfig()
        self._database = Database(seed=self._config.seed)
        self._theme_cache: dict[str, ThemeSet] = {}
        self._map_cache = map_cache
        self._graph_builder = GraphBuilder(result_cache=map_cache)
        self._map_builder = MapBuilder(result_cache=map_cache)

    @property
    def config(self) -> BlaeuConfig:
        """The engine configuration."""
        return self._config

    @property
    def database(self) -> Database:
        """The underlying catalog (MonetDB's role)."""
        return self._database

    @property
    def map_cache(self) -> object | None:
        """The shared map result cache (``None`` when caching is off)."""
        return self._map_cache

    @property
    def graph_builder(self) -> GraphBuilder:
        """The shared dependency-graph builder (codes + graph reuse)."""
        return self._graph_builder

    @property
    def map_builder(self) -> MapBuilder:
        """The shared map-pipeline builder (stage + map reuse)."""
        return self._map_builder

    def set_map_cache(self, cache: object | None) -> None:
        """Install (or remove) a shared map result cache.

        The cache must expose ``get(key)``/``put(key, value)``; existing
        explorers keep the builder they were created with.  The graph
        and map builders adopt the same cache as their memo, so finished
        dependency graphs and pipeline stage artifacts are shared across
        sessions alongside maps.
        """
        self._map_cache = cache
        self._graph_builder.set_result_cache(cache)
        self._map_builder.set_result_cache(cache)

    # ------------------------------------------------------------------
    # Data ingestion
    # ------------------------------------------------------------------

    def load_csv(self, path: str | Path, name: str | None = None) -> Table:
        """Load a CSV file into the catalog; returns the table."""
        return self._database.load_csv(path, name=name)

    def load_store(self, path: str | Path, name: str | None = None):
        """Register a store directory (out-of-core table); returns it.

        The rows stay on disk (:mod:`repro.store`); exploration samples
        and scans them in chunks instead of materializing the table.
        ``config.scan_jobs`` (when set) fans those scans over worker
        processes; otherwise ``BLAEU_SCAN_JOBS`` applies.
        """
        if self._config.scan_jobs is not None:
            table = self._database.load_store(
                path, name=name, scan_jobs=self._config.scan_jobs
            )
        else:
            table = self._database.load_store(path, name=name)
        self._theme_cache.pop(table.name, None)
        return table

    def register(self, table) -> None:
        """Register an in-memory ``Table`` or a ``StoredTable``."""
        self._database.register(table)
        self._theme_cache.pop(table.name, None)

    def tables(self) -> tuple[str, ...]:
        """Names of the registered tables."""
        return self._database.table_names()

    # ------------------------------------------------------------------
    # Analysis entry points
    # ------------------------------------------------------------------

    def themes(self, table_name: str) -> ThemeSet:
        """The themes of a registered table (cached per table)."""
        if table_name not in self._theme_cache:
            table = self._database.table(table_name)
            rng = np.random.default_rng(self._config.seed)
            self._theme_cache[table_name] = extract_themes(
                table,
                config=self._config,
                rng=rng,
                builder=self._graph_builder,
            )
        return self._theme_cache[table_name]

    def map(
        self,
        table_name: str,
        columns: tuple[str, ...],
        k: int | None = None,
        count_mode: str | None = None,
    ) -> DataMap:
        """A one-shot data map over explicit columns (no session)."""
        table = self._database.table(table_name)
        rng = np.random.default_rng(self._config.seed)
        return self._map_builder.build(
            table,
            tuple(columns),
            config=self._config,
            rng=rng,
            k=k,
            count_mode=count_mode,
        )

    def explore(self, table_name: str) -> Explorer:
        """Start an interactive exploration session over a table."""
        table = self._database.table(table_name)
        themes = self._theme_cache.get(table_name)
        return Explorer(
            table,
            config=self._config,
            themes=themes,
            map_cache=self._map_cache,
            graph_builder=self._graph_builder,
            map_builder=self._map_builder,
        )

"""Engine configuration.

One dataclass gathers every knob the paper mentions — sample sizes ("a
few thousand samples" per zoom), the CLARA cutover, silhouette
Monte-Carlo parameters, candidate k ranges — so experiments can sweep
them and the defaults document the paper's operating point.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.tree.cart import CartParams

__all__ = ["BlaeuConfig", "ExplorationConfig"]


@dataclass(frozen=True)
class BlaeuConfig:
    """All tuning knobs of the Blaeu engine.

    Attributes
    ----------
    map_sample_size:
        Tuples sampled from the active selection before clustering
        (paper: "a few thousand").
    dependency_sample_size:
        Rows sampled for dependency-graph estimation.
    graph_jobs:
        Thread-level parallelism of the batched NMI kernel behind the
        dependency graph: ``None`` or 1 runs serially, 0 uses every
        core, any other value that many workers.  Results are identical
        across settings.
    graph_bin_sample_size:
        Rows in the deterministic sample the graph stage derives its
        numeric bin cuts from.  The sample is seeded independently of
        the session RNG, so cuts — and therefore cached column codes —
        are identical across processes and across store/memory
        residencies of the same table.
    clara_threshold:
        Sample sizes above this use CLARA instead of exact PAM.
    clara_draws:
        Independent CLARA samples (Kaufman & Rousseeuw recommend 5).
    clara_sample_size:
        Rows per CLARA draw (``None``: the book's 40 + 2k rule).
    clara_jobs:
        Thread-level parallelism for CLARA's independent draws: ``None``
        or 1 runs serially, 0 uses every core, any other value that many
        workers.  Results are bit-identical across settings (each draw
        owns a spawned child RNG).
    scan_jobs:
        Process-level parallelism of chunked store scans (exact region
        counts, predicate masks, highlights, whole-table NMI): ``None``
        or 1 runs serially, 0 uses every core, any other value that many
        worker processes.  Partition partials merge in partition order,
        so results are bit-identical across settings.  In-memory tables
        ignore it.
    map_k_values:
        Candidate cluster counts for data maps.
    theme_k_values:
        Candidate theme counts for the column partition; ``None`` (the
        default) uses a logarithmic grid scaled to the column count
        (wide tables like the 378-column OECD set need k ≫ 8).
    silhouette_subsamples / silhouette_subsample_size:
        Monte-Carlo silhouette parameters (paper §3).
    silhouette_exact_threshold:
        Samples up to this many rows are scored with the exact silhouette
        over one shared distance matrix; larger samples fall back to the
        Monte-Carlo estimator (whose subsample matrices are likewise
        computed once and shared across every candidate k).
    distance_dtype:
        Floating dtype of the distance kernels: ``"float64"`` (default)
        or ``"float32"`` — half the memory traffic on the O(n²)
        matrices, at a bounded accuracy cost.
    tree_params:
        CART growth controls for the description stage.
    max_categorical_cardinality:
        Categorical columns with more distinct labels are excluded from
        clustering features (they behave like keys; they remain available
        for highlighting).
    min_zoom_rows:
        Regions with fewer matching tuples than this cannot be zoomed
        into (nothing left to cluster).
    highlight_preview_rows:
        Tuples shown by a highlight before charts take over.
    prune_leaf_factor:
        After the description stage the tree is pruned toward
        ``k × prune_leaf_factor`` leaves for legibility.
    prune_min_fidelity:
        Pruning never drops the tree's agreement with the clustering
        below this fraction.
    pipeline_reuse:
        Whether the staged map pipeline memoizes per-stage artifacts
        (sample, feature space, distance matrix, clustering,
        description) in the shared result cache, so navigation actions
        re-enter mid-pipeline instead of recomputing from scratch.
        ``False`` keeps only the finished-map cache.  Results are
        identical either way.
    count_mode:
        ``"exact"`` (default) blocks each map build on the exact
        region-count routing pass over the full selection;
        ``"approximate"`` returns immediately with sample-extrapolated
        counts (± error bounds) and leaves the exact pass to
        :meth:`Explorer.refine` / the service's background refinement.
    seed:
        Root seed for all engine randomness.
    """

    map_sample_size: int = 2000
    dependency_sample_size: int = 1000
    graph_jobs: int | None = None
    graph_bin_sample_size: int = 4096
    clara_threshold: int = 1200
    clara_draws: int = 5
    clara_sample_size: int | None = None
    clara_jobs: int | None = None
    scan_jobs: int | None = None
    map_k_values: tuple[int, ...] = (2, 3, 4, 5, 6)
    theme_k_values: tuple[int, ...] | None = None
    silhouette_subsamples: int = 8
    silhouette_subsample_size: int = 200
    silhouette_exact_threshold: int = 600
    distance_dtype: str = "float64"
    tree_params: CartParams = field(default_factory=CartParams)
    max_categorical_cardinality: int = 50
    min_zoom_rows: int = 20
    highlight_preview_rows: int = 12
    prune_leaf_factor: int = 2
    prune_min_fidelity: float = 0.9
    pipeline_reuse: bool = True
    count_mode: str = "exact"
    seed: int = 42

    def __post_init__(self) -> None:
        if self.map_sample_size < 10:
            raise ValueError("map_sample_size must be at least 10")
        if self.clara_threshold < 10:
            raise ValueError("clara_threshold must be at least 10")
        if not self.map_k_values or min(self.map_k_values) < 2:
            raise ValueError("map_k_values must contain integers >= 2")
        if self.theme_k_values is not None and (
            not self.theme_k_values or min(self.theme_k_values) < 2
        ):
            raise ValueError("theme_k_values must contain integers >= 2")
        if self.clara_jobs is not None and self.clara_jobs < 0:
            raise ValueError("clara_jobs must be None, 0 (all cores) or >= 1")
        if self.graph_jobs is not None and self.graph_jobs < 0:
            raise ValueError("graph_jobs must be None, 0 (all cores) or >= 1")
        if self.scan_jobs is not None and self.scan_jobs < 0:
            raise ValueError("scan_jobs must be None, 0 (all cores) or >= 1")
        if self.graph_bin_sample_size < 2:
            raise ValueError("graph_bin_sample_size must be at least 2")
        if self.silhouette_exact_threshold < 0:
            raise ValueError("silhouette_exact_threshold must be >= 0")
        if self.distance_dtype not in ("float32", "float64"):
            raise ValueError("distance_dtype must be 'float32' or 'float64'")
        if self.min_zoom_rows < 2:
            raise ValueError("min_zoom_rows must be at least 2")
        if self.prune_leaf_factor < 1:
            raise ValueError("prune_leaf_factor must be at least 1")
        if not 0.0 <= self.prune_min_fidelity <= 1.0:
            raise ValueError("prune_min_fidelity must be in [0, 1]")
        if self.count_mode not in ("exact", "approximate"):
            raise ValueError("count_mode must be 'exact' or 'approximate'")

    #: Knobs that change how a result is computed or delivered but never
    #: which result — excluded from :meth:`digest` so configs differing
    #: only here share cache entries and key-derived randomness (the
    #: "results are identical either way" contracts depend on this).
    _RESULT_NEUTRAL_KNOBS = ("pipeline_reuse", "count_mode")

    def digest(self) -> str:
        """A stable hash of every result-affecting knob.

        Two configs with equal field values share a digest; any knob
        that can change a computed result changes it.  Used as a
        cache-key component (and, via the key-seeded RNG chain, as the
        randomness root) so results computed under one configuration
        are never served — or perturbed — by another.  The
        result-neutral knobs ``pipeline_reuse`` and ``count_mode`` are
        excluded: stage memoization and two-phase counting never change
        the final exact map, so sessions differing only there share
        cache entries and refinements.
        """
        payload = dataclasses.asdict(self)
        for knob in self._RESULT_NEUTRAL_KNOBS:
            payload.pop(knob)
        text = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


#: The curated public name of the engine configuration: exploration is
#: what the knobs tune (sample sizes per zoom, cluster-count grids,
#: CLARA cutovers), so ``repro.ExplorationConfig`` is the spelling the
#: package surface advertises.  ``BlaeuConfig`` remains the internal
#: (and historical) name; they are the same class.
ExplorationConfig = BlaeuConfig

"""Engine configuration.

One dataclass gathers every knob the paper mentions — sample sizes ("a
few thousand samples" per zoom), the CLARA cutover, silhouette
Monte-Carlo parameters, candidate k ranges — so experiments can sweep
them and the defaults document the paper's operating point.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.tree.cart import CartParams

__all__ = ["BlaeuConfig"]


@dataclass(frozen=True)
class BlaeuConfig:
    """All tuning knobs of the Blaeu engine.

    Attributes
    ----------
    map_sample_size:
        Tuples sampled from the active selection before clustering
        (paper: "a few thousand").
    dependency_sample_size:
        Rows sampled for dependency-graph estimation.
    clara_threshold:
        Sample sizes above this use CLARA instead of exact PAM.
    clara_draws:
        Independent CLARA samples (Kaufman & Rousseeuw recommend 5).
    clara_sample_size:
        Rows per CLARA draw (``None``: the book's 40 + 2k rule).
    map_k_values:
        Candidate cluster counts for data maps.
    theme_k_values:
        Candidate theme counts for the column partition; ``None`` (the
        default) uses a logarithmic grid scaled to the column count
        (wide tables like the 378-column OECD set need k ≫ 8).
    silhouette_subsamples / silhouette_subsample_size:
        Monte-Carlo silhouette parameters (paper §3).
    tree_params:
        CART growth controls for the description stage.
    max_categorical_cardinality:
        Categorical columns with more distinct labels are excluded from
        clustering features (they behave like keys; they remain available
        for highlighting).
    min_zoom_rows:
        Regions with fewer matching tuples than this cannot be zoomed
        into (nothing left to cluster).
    highlight_preview_rows:
        Tuples shown by a highlight before charts take over.
    prune_leaf_factor:
        After the description stage the tree is pruned toward
        ``k × prune_leaf_factor`` leaves for legibility.
    prune_min_fidelity:
        Pruning never drops the tree's agreement with the clustering
        below this fraction.
    seed:
        Root seed for all engine randomness.
    """

    map_sample_size: int = 2000
    dependency_sample_size: int = 1000
    clara_threshold: int = 1200
    clara_draws: int = 5
    clara_sample_size: int | None = None
    map_k_values: tuple[int, ...] = (2, 3, 4, 5, 6)
    theme_k_values: tuple[int, ...] | None = None
    silhouette_subsamples: int = 8
    silhouette_subsample_size: int = 200
    tree_params: CartParams = field(default_factory=CartParams)
    max_categorical_cardinality: int = 50
    min_zoom_rows: int = 20
    highlight_preview_rows: int = 12
    prune_leaf_factor: int = 2
    prune_min_fidelity: float = 0.9
    seed: int = 42

    def __post_init__(self) -> None:
        if self.map_sample_size < 10:
            raise ValueError("map_sample_size must be at least 10")
        if self.clara_threshold < 10:
            raise ValueError("clara_threshold must be at least 10")
        if not self.map_k_values or min(self.map_k_values) < 2:
            raise ValueError("map_k_values must contain integers >= 2")
        if self.theme_k_values is not None and (
            not self.theme_k_values or min(self.theme_k_values) < 2
        ):
            raise ValueError("theme_k_values must contain integers >= 2")
        if self.min_zoom_rows < 2:
            raise ValueError("min_zoom_rows must be at least 2")
        if self.prune_leaf_factor < 1:
            raise ValueError("prune_leaf_factor must be at least 1")
        if not 0.0 <= self.prune_min_fidelity <= 1.0:
            raise ValueError("prune_min_fidelity must be in [0, 1]")

    def digest(self) -> str:
        """A stable hash of every knob (nested dataclasses included).

        Two configs with equal field values share a digest; any changed
        knob changes it.  Used as a cache-key component so results
        computed under one configuration are never served under another.
        """
        payload = dataclasses.asdict(self)
        text = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

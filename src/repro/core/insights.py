"""Region insights: *why* is this cluster distinct?

The demo's goal is "triggering insights and serendipity" (§1) — the map
shows *that* a region exists; this module explains *what makes it
different* from the rest of the selection.  For the active region it
compares every column's distribution inside vs outside:

* numeric columns get a standardized mean difference (Cohen's d); the
  sign says whether the region runs high or low;
* categorical columns get per-label **lift** (P(label | region) /
  P(label)); labels concentrated in the region have lift ≫ 1.

Columns are ranked by effect size, so the first few lines of an
:class:`InsightReport` read like the caption a human analyst would write
("this cluster: long working hours, low income, mostly Mexico/Korea").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.predicates import Predicate
from repro.table.table import Table

__all__ = ["NumericInsight", "CategoryInsight", "InsightReport", "region_insights"]

#: Effects smaller than this are omitted from reports (noise floor).
MIN_EFFECT = 0.2

#: Labels need this many in-region rows before a lift is trusted.
MIN_LABEL_SUPPORT = 5


@dataclass(frozen=True)
class NumericInsight:
    """One numeric column's inside-vs-outside contrast."""

    column: str
    inside_mean: float
    outside_mean: float
    effect_size: float  # Cohen's d; sign: + means region runs high

    @property
    def direction(self) -> str:
        """``high`` or ``low`` relative to the rest of the selection."""
        return "high" if self.effect_size > 0 else "low"

    def describe(self) -> str:
        """One human-readable line."""
        return (
            f"{self.column}: {self.direction} "
            f"({self.inside_mean:.3g} vs {self.outside_mean:.3g} outside, "
            f"d={self.effect_size:+.2f})"
        )


@dataclass(frozen=True)
class CategoryInsight:
    """One label over-represented (or depleted) in the region."""

    column: str
    label: str
    inside_share: float
    overall_share: float
    lift: float

    def describe(self) -> str:
        """One human-readable line."""
        return (
            f"{self.column} = {self.label!r}: {self.inside_share:.0%} of the "
            f"region vs {self.overall_share:.0%} overall "
            f"(lift {self.lift:.1f}x)"
        )


@dataclass(frozen=True)
class InsightReport:
    """All contrasts for one region, strongest first."""

    n_inside: int
    n_outside: int
    numeric: tuple[NumericInsight, ...]
    categories: tuple[CategoryInsight, ...]

    def headline(self, max_items: int = 4) -> str:
        """The analyst's one-line caption for the region."""
        parts: list[str] = []
        for insight in self.numeric[:max_items]:
            parts.append(f"{insight.direction} {insight.column}")
        remaining = max_items - len(parts)
        for insight in self.categories[:remaining]:
            parts.append(f"mostly {insight.column}={insight.label}")
        if not parts:
            return "no distinguishing columns at the current noise floor"
        return ", ".join(parts)

    def describe(self) -> str:
        """The full multi-line report."""
        lines = [
            f"region: {self.n_inside} tuples vs {self.n_outside} outside",
            f"headline: {self.headline()}",
        ]
        lines += ["  " + insight.describe() for insight in self.numeric]
        lines += ["  " + insight.describe() for insight in self.categories]
        return "\n".join(lines)


def region_insights(
    table: Table,
    region_predicate: Predicate,
    columns: tuple[str, ...] | None = None,
    min_effect: float = MIN_EFFECT,
) -> InsightReport:
    """Contrast a region against the rest of ``table``.

    Parameters
    ----------
    table:
        The active selection (the region is a subset of it).
    region_predicate:
        Which rows form the region.
    columns:
        Columns to contrast (default: all).
    min_effect:
        Noise floor: numeric |d| and |log2(lift)| below this are dropped.
    """
    inside_mask = region_predicate.mask(table)
    n_inside = int(inside_mask.sum())
    n_outside = table.n_rows - n_inside
    names = columns if columns is not None else table.column_names

    numeric: list[NumericInsight] = []
    categories: list[CategoryInsight] = []
    # An empty or single-row region has no inside distribution to
    # contrast (Cohen's d needs at least two values and a non-zero
    # pooled spread), and a region covering the whole selection has no
    # outside — all three degenerate to an empty report rather than
    # per-column edge cases.
    if n_inside < 2 or n_outside == 0:
        return InsightReport(
            n_inside=n_inside, n_outside=n_outside,
            numeric=(), categories=(),
        )

    for name in names:
        column = table.column(name)
        if isinstance(column, NumericColumn):
            insight = _numeric_contrast(column, inside_mask)
            if insight is not None and abs(insight.effect_size) >= min_effect:
                numeric.append(insight)
        elif isinstance(column, CategoricalColumn):
            categories.extend(
                _category_contrasts(column, inside_mask, min_effect)
            )

    numeric.sort(key=lambda i: -abs(i.effect_size))
    categories.sort(key=lambda i: -abs(np.log(max(i.lift, 1e-9))))
    return InsightReport(
        n_inside=n_inside,
        n_outside=n_outside,
        numeric=tuple(numeric),
        categories=tuple(categories),
    )


def _numeric_contrast(
    column: NumericColumn, inside_mask: np.ndarray
) -> NumericInsight | None:
    values = column.values
    present = column.present_mask
    inside = values[inside_mask & present]
    outside = values[~inside_mask & present]
    if inside.size < 2 or outside.size < 2:
        return None
    pooled = np.concatenate([inside, outside]).std()
    if pooled == 0.0:
        return None
    effect = float((inside.mean() - outside.mean()) / pooled)
    return NumericInsight(
        column=column.name,
        inside_mean=float(inside.mean()),
        outside_mean=float(outside.mean()),
        effect_size=effect,
    )


def _category_contrasts(
    column: CategoricalColumn,
    inside_mask: np.ndarray,
    min_effect: float,
) -> list[CategoryInsight]:
    present = column.present_mask
    inside_codes = column.codes[inside_mask & present]
    all_codes = column.codes[present]
    if inside_codes.size == 0 or all_codes.size == 0:
        return []
    n_categories = len(column.categories)
    inside_counts = np.bincount(inside_codes, minlength=n_categories)
    overall_counts = np.bincount(all_codes, minlength=n_categories)

    out: list[CategoryInsight] = []
    for code in range(n_categories):
        # The support floor must come first: a label seen only a few
        # times inside the region has an unstable share, and when the
        # label never occurs *outside* the region its overall share
        # approaches the inside share scaled by the region fraction —
        # without the floor, tiny regions would report huge (in the
        # limit, unbounded) lifts from a handful of rows.
        if inside_counts[code] < MIN_LABEL_SUPPORT:
            continue
        inside_share = inside_counts[code] / inside_codes.size
        overall_share = overall_counts[code] / all_codes.size
        if overall_share <= 0.0:
            # Unreachable while the region is a subset of the table
            # (inside counts contribute to overall counts), but kept as
            # a hard guard: a zero outside-probability label must never
            # divide through to an infinite lift.
            continue
        lift = inside_share / overall_share
        if not np.isfinite(lift):
            continue
        if abs(np.log2(max(lift, 1e-9))) < min_effect:
            continue
        out.append(
            CategoryInsight(
                column=column.name,
                label=column.categories[code],
                inside_share=float(inside_share),
                overall_share=float(overall_share),
                lift=float(lift),
            )
        )
    return out

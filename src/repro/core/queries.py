"""Navigation → Select-Project SQL (the expressivity claim, §2).

"With Blaeu, our users implicitly formulate and refine Select-Project
queries. … Blaeu quantizes the query space: to refine their queries, the
users need only to consider a few discrete alternatives."

This module renders exploration states as SQL and enumerates the
*quantized query space* of a map — the finite set of queries one click
away — which the expressivity benchmark checks against direct predicate
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.datamap import DataMap
from repro.table.predicates import And, Everything, Predicate
from repro.table.table import Table

__all__ = ["state_to_sql", "QuantizedQuery", "quantized_queries"]


def state_to_sql(
    table_name: str,
    selection: Predicate,
    columns: tuple[str, ...],
) -> str:
    """Render an exploration state as the query it denotes."""
    if columns:
        select_list = ", ".join(f'"{c}"' for c in columns)
    else:
        select_list = "*"
    sql = f'SELECT {select_list} FROM "{table_name}"'
    where = selection.to_sql()
    if where != "TRUE":
        sql += f" WHERE {where}"
    return sql


@dataclass(frozen=True)
class QuantizedQuery:
    """One element of the quantized query space: a clickable region."""

    region_id: str
    predicate: Predicate
    sql: str
    n_rows: int


def quantized_queries(
    table: Table,
    data_map: DataMap,
    selection: Predicate | None = None,
) -> list[QuantizedQuery]:
    """Every query reachable by one click on ``data_map``.

    One entry per region (internal regions are clickable too — zooming
    into them is legal).  The SQL projects the map's active columns and
    conjoins the map-relative region predicate with the enclosing
    ``selection``.
    """
    selection = selection or Everything()
    out: list[QuantizedQuery] = []
    for region in data_map.regions():
        predicate = And.of(selection, region.predicate)
        out.append(
            QuantizedQuery(
                region_id=region.region_id,
                predicate=predicate,
                sql=state_to_sql(table.name, predicate, data_map.columns),
                n_rows=region.n_rows,
            )
        )
    return out

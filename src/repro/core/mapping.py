"""Stages 2–3 of the mapping pipeline: cluster, then describe (Figure 3).

Given a selection and an active column set, :func:`build_map`:

1. takes a *sample* of the selection (a few thousand tuples — paper §3),
2. **preprocesses** it into vectors (:mod:`repro.core.preprocess`),
3. **clusters** the vectors with PAM — or CLARA when the sample is still
   large — choosing k by Monte-Carlo silhouette,
4. **describes** the clusters with a CART tree trained on the original
   columns, with cluster ids as class labels,
5. converts the tree into a :class:`~repro.core.datamap.Region` hierarchy
   and counts each region's tuples *exactly* over the full selection by
   routing every tuple through the tree.

The resulting map is interpretable by construction (every boundary is a
split predicate) at the cost the paper acknowledges: "the decision tree
only approximates the real partitions detected during the clustering
step" — that approximation quality is reported as ``fidelity``.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.cluster.clara import clara
from repro.cluster.distance import pairwise_distances
from repro.cluster.kselect import select_k_points
from repro.cluster.pam import Clustering, pam
from repro.cluster.silhouette import SharedSilhouette, silhouette_samples
from repro.core.config import BlaeuConfig
from repro.core.datamap import DataMap, Region
from repro.core.preprocess import preprocess
from repro.table.predicates import And, Comparison, Everything, Predicate
from repro.table.table import Table
from repro.tree.cart import DecisionTree, TreeNode, fit_tree
from repro.tree.prune import prune_for_legibility

__all__ = ["build_map", "build_map_cached", "cache_key_seed", "map_cache_key"]


def cache_key_seed(cache_key: object) -> int:
    """A deterministic RNG seed derived from a cache key.

    Cache-aware callers seed each build from its key instead of from a
    session-local RNG stream: otherwise the RNG state a build sees would
    depend on which earlier actions hit the cache, and the same action
    path could yield different maps depending on cache warmth.
    """
    digest = hashlib.sha256(repr(cache_key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def map_cache_key(
    table: Table,
    selection_sql: str,
    columns: tuple[str, ...],
    config: BlaeuConfig,
    k: int | None = None,
) -> tuple[str, str, str, tuple[str, ...], int | None]:
    """The canonical cache key of one map-building request.

    Combines the *content* fingerprint of the base table, the config
    digest and the canonical action path (selection predicate rendered
    as SQL, plus the active columns) — so two sessions that navigated to
    the same place share a key even if they got there independently.
    """
    return (table.fingerprint(), config.digest(), selection_sql, tuple(columns), k)


def build_map_cached(
    table: Table,
    columns: tuple[str, ...],
    config: BlaeuConfig | None = None,
    rng: np.random.Generator | None = None,
    k: int | None = None,
    cache: "object | None" = None,
    selection: Predicate | None = None,
) -> DataMap:
    """:func:`build_map` behind an optional shared result cache.

    ``table`` is the *base* table; ``selection`` (default: everything)
    is applied lazily, only on a cache miss — a hit costs one lookup,
    not an O(rows) predicate evaluation.  ``cache`` is any object with
    ``get(key)``/``put(key, value)`` (see
    :class:`repro.service.cache.LRUCache`).  On a hit the stored
    :class:`DataMap` is returned as-is — maps are treated as immutable
    once built, so sharing one across sessions is safe.

    When a cache is installed the build RNG is seeded from the cache
    key (via :func:`cache_key_seed`), so the map an action path
    produces never depends on cache warmth or on which session built
    it first; without a cache the caller's ``rng`` stream is used,
    preserving the original session-sequential behaviour.
    """
    config = config or BlaeuConfig()
    cache_key = None
    if cache is not None:
        selection_sql = selection.to_sql() if selection is not None else "TRUE"
        cache_key = map_cache_key(
            table, selection_sql, tuple(columns), config, k=k
        )
        hit = cache.get(cache_key)
        if hit is not None:
            return hit
        rng = np.random.default_rng(cache_key_seed(cache_key))
    if selection is None or isinstance(selection, Everything):
        subset = table
    else:
        subset = table.select(selection)
    data_map = build_map(subset, columns, config=config, rng=rng, k=k)
    if cache is not None:
        cache.put(cache_key, data_map)
    return data_map


def build_map(
    selection: Table,
    columns: tuple[str, ...],
    config: BlaeuConfig | None = None,
    rng: np.random.Generator | None = None,
    k: int | None = None,
) -> DataMap:
    """Build the data map of ``selection`` over the active ``columns``.

    Parameters
    ----------
    selection:
        The tuples matching the user's current query (already selected).
    columns:
        Active column set (typically a theme).
    config:
        Engine knobs; defaults to :class:`BlaeuConfig`.
    rng:
        Randomness for sampling / CLARA / silhouette.
    k:
        Force a specific cluster count instead of silhouette selection.
    """
    config = config or BlaeuConfig()
    rng = rng or np.random.default_rng(config.seed)
    if not columns:
        raise ValueError("build_map needs at least one active column")
    if selection.n_rows < 2:
        raise ValueError(
            f"selection has {selection.n_rows} rows; nothing to cluster"
        )

    # Stage 0: sampling (multi-scale sampling handled by the caller's
    # Database when available; plain uniform here).  Only the sampled
    # slice is ever materialized: store-backed selections
    # (:mod:`repro.store`) hand back a plain in-memory Table here, and
    # the full selection is touched again only by the chunked routing
    # scan at the end of stage 3.
    if selection.n_rows > config.map_sample_size:
        sample = selection.sample(config.map_sample_size, rng=rng)
    elif getattr(selection, "iter_chunks", None) is not None:
        # A store-backed selection small enough to skip sampling still
        # needs one in-memory copy for the vectorized pipeline stages.
        sample = selection.take(np.arange(selection.n_rows, dtype=np.intp))
    else:
        sample = selection

    # Stage 1: preprocessing.
    space = preprocess(
        sample,
        columns=columns,
        max_categorical_cardinality=config.max_categorical_cardinality,
    )

    # Stage 2: cluster detection (PAM, or CLARA at scale), k by silhouette.
    clustering, silhouette, shared_matrix = _cluster(
        space.matrix, config, rng, forced_k=k
    )

    # Stage 3: cluster description with CART on the *original* columns.
    describable = [
        name for name in columns if name in space.used_columns
    ]
    tree = fit_tree(
        sample,
        clustering.labels,
        feature_names=describable,
        params=config.tree_params,
    )
    tree = prune_for_legibility(
        tree,
        target_leaves=clustering.k * config.prune_leaf_factor,
        min_accuracy=config.prune_min_fidelity,
    )
    fidelity = tree.accuracy(sample, clustering.labels)

    # Region hierarchy + exact counts over the full selection: every
    # tuple is routed through the fitted tree (store-backed selections
    # route in one chunked pass over just the split columns).
    leaf_silhouettes = _leaf_silhouettes(
        space.matrix, clustering, config, rng, shared_matrix
    )
    exemplars = _exemplars(sample, clustering, columns)
    root = _tree_to_regions(
        tree.root,
        selection.n_rows,
        _left_router(tree, selection),
        leaf_silhouettes,
        exemplars,
    )
    return DataMap(
        root=root,
        columns=tuple(columns),
        k=clustering.k,
        silhouette=silhouette,
        fidelity=fidelity,
        sample_size=sample.n_rows,
    )


# ----------------------------------------------------------------------
# Stage 2 internals
# ----------------------------------------------------------------------


def _cluster(
    matrix: np.ndarray,
    config: BlaeuConfig,
    rng: np.random.Generator,
    forced_k: int | None,
) -> tuple[Clustering, float, np.ndarray | None]:
    """Cluster the vectors; return the clustering, its silhouette, and the
    shared distance matrix when one was built (``None`` on the CLARA path).

    All distance work is done once per call: at PAM scale the pairwise
    matrix is computed a single time and reused by every candidate k, by
    every silhouette evaluation and by the caller's per-leaf quality
    panel; at CLARA scale the draws fan out over ``config.clara_jobs``
    threads and the Monte-Carlo silhouette subsamples are drawn once for
    the whole k sweep.
    """
    n = matrix.shape[0]
    dtype = config.distance_dtype

    shared_matrix: np.ndarray | None = None
    if n <= config.clara_threshold:
        shared_matrix = pairwise_distances(matrix, dtype=dtype)

    def cluster_fn(points: np.ndarray, k: int) -> Clustering:
        if shared_matrix is not None:
            return pam(shared_matrix, k, rng=rng, validate=False)
        return clara(
            points,
            k,
            n_draws=config.clara_draws,
            sample_size=config.clara_sample_size,
            rng=rng,
            n_jobs=config.clara_jobs,
            dtype=dtype,
        )

    shared = SharedSilhouette(
        matrix,
        n_subsamples=config.silhouette_subsamples,
        subsample_size=config.silhouette_subsample_size,
        exact_threshold=config.silhouette_exact_threshold,
        rng=rng,
        dtype=dtype,
        distances=shared_matrix,
    )

    if forced_k is not None:
        if not 1 <= forced_k <= n:
            raise ValueError(f"forced k={forced_k} out of range [1, {n}]")
        clustering = cluster_fn(matrix, forced_k)
        return clustering, shared.score(clustering.labels), shared_matrix

    selection = select_k_points(
        matrix,
        cluster_fn,
        k_values=config.map_k_values,
        rng=rng,
        shared=shared,
    )
    return selection.clustering, selection.best.silhouette, shared_matrix


def _leaf_silhouettes(
    matrix: np.ndarray,
    clustering: Clustering,
    config: BlaeuConfig,
    rng: np.random.Generator,
    shared_matrix: np.ndarray | None = None,
) -> dict[int, float]:
    """Per-cluster mean silhouette, from a bounded subsample.

    When the clustering stage already built the full distance matrix it
    is reused as-is (exact per-leaf quality, zero extra distance work).
    """
    n = matrix.shape[0]
    if shared_matrix is not None:
        labels = clustering.labels
        distances = shared_matrix
    else:
        cap = max(config.silhouette_subsample_size * 2, 400)
        if n > cap:
            chosen = rng.choice(n, size=cap, replace=False)
        else:
            chosen = np.arange(n)
        labels = clustering.labels[chosen]
        distances = None
    if np.unique(labels).size < 2:
        return {int(c): 0.0 for c in np.unique(clustering.labels)}
    if distances is None:
        distances = pairwise_distances(
            matrix[chosen], dtype=config.distance_dtype
        )
    values = silhouette_samples(distances, labels, validate=False)
    return {
        int(cluster): float(values[labels == cluster].mean())
        for cluster in np.unique(labels)
    }


def _exemplars(
    sample: Table,
    clustering: Clustering,
    columns: tuple[str, ...],
) -> dict[int, dict[str, object]]:
    """Medoid tuple per cluster, restricted to the active columns."""
    out: dict[int, dict[str, object]] = {}
    for cluster in range(clustering.k):
        medoid_row = int(clustering.medoids[cluster])
        row = sample.row(medoid_row)
        out[cluster] = {name: row[name] for name in columns if name in row}
    return out


# ----------------------------------------------------------------------
# Stage 3 internals: tree → regions
# ----------------------------------------------------------------------


def _left_router(tree: DecisionTree, selection: Table):
    """A ``node -> goes-left mask`` function over the full selection.

    In-memory selections evaluate lazily per node (the column arrays are
    already resident).  Store-backed selections — anything exposing
    ``iter_chunks`` — are routed in **one chunked pass** that reads only
    the columns the tree actually splits on, so exact region counts over
    millions of rows cost one bounded scan instead of per-node
    full-column materializations.
    """
    iter_chunks = getattr(selection, "iter_chunks", None)
    if iter_chunks is None:
        return lambda node: _route_left(node, selection)

    from repro.tree.cart import _left_mask

    internal = [node for node in tree.root.walk() if not node.is_leaf]
    masks = {
        id(node): np.zeros(selection.n_rows, dtype=bool) for node in internal
    }
    if internal:
        needed = tuple(sorted({node.column or "" for node in internal}))
        for start, stop, chunk in iter_chunks(columns=needed):
            local = np.arange(stop - start, dtype=np.intp)
            for node in internal:
                column = chunk.column(node.column or "")
                masks[id(node)][start:stop] = _left_mask(node, column, local)
    return lambda node: masks[id(node)]


def _tree_to_regions(
    node: TreeNode,
    n_rows: int,
    route_left,
    leaf_silhouettes: dict[int, float],
    exemplars: dict[int, dict[str, object]],
    region_id: str = "r",
    label: str = "all rows",
    path: tuple[Predicate, ...] = (),
    row_mask: np.ndarray | None = None,
) -> Region:
    """Recursively mirror the description tree as a region hierarchy.

    ``row_mask`` tracks which selection rows route into this node, so
    counts come from the actual tree routing (missing values follow the
    fitted majority branch) rather than from re-evaluating predicates,
    which would disagree on missing cells.  ``route_left`` supplies the
    per-node routing masks (see :func:`_left_router`).
    """
    if row_mask is None:
        row_mask = np.ones(n_rows, dtype=bool)
    predicate: Predicate = And.of(*path) if path else Everything()

    if node.is_leaf:
        cluster = node.prediction
        return Region(
            region_id=region_id,
            label=label,
            predicate=predicate,
            n_rows=int(row_mask.sum()),
            depth=node.depth,
            cluster=cluster,
            silhouette=leaf_silhouettes.get(cluster),
            exemplar=exemplars.get(cluster, {}),
        )

    assert node.left is not None and node.right is not None
    left_predicate, right_predicate = _split_predicates(node)
    left_label, right_label = _split_labels(node)
    goes_left = route_left(node)
    left_mask = row_mask & goes_left
    right_mask = row_mask & ~goes_left

    region = Region(
        region_id=region_id,
        label=label,
        predicate=predicate,
        n_rows=int(row_mask.sum()),
        depth=node.depth,
    )
    region.children = [
        _tree_to_regions(
            node.left,
            n_rows,
            route_left,
            leaf_silhouettes,
            exemplars,
            region_id=region_id + "0",
            label=left_label,
            path=path + (left_predicate,),
            row_mask=left_mask,
        ),
        _tree_to_regions(
            node.right,
            n_rows,
            route_left,
            leaf_silhouettes,
            exemplars,
            region_id=region_id + "1",
            label=right_label,
            path=path + (right_predicate,),
            row_mask=right_mask,
        ),
    ]
    return region


def _split_predicates(node: TreeNode) -> tuple[Predicate, Predicate]:
    """The (left, right) predicates of a split, missing-values included.

    The fitted tree routes missing cells along the node's majority branch;
    the predicates say so explicitly (``… OR x IS NULL``), so that the SQL
    a region displays selects *exactly* the tuples the region counts.
    """
    from repro.table.predicates import IsMissing, Or

    column = node.column or ""
    if node.threshold is not None:
        left: Predicate = Comparison(column, "<", node.threshold)
        right: Predicate = Comparison(column, ">=", node.threshold)
    else:
        category = node.category or ""
        left = Comparison(column, "==", category)
        right = Comparison(column, "!=", category)
    if node.missing_goes_left:
        left = Or((left, IsMissing(column)))
    else:
        right = Or((right, IsMissing(column)))
    return left, right


def _split_labels(node: TreeNode) -> tuple[str, str]:
    """Short display labels for the two branches (no IS NULL noise)."""
    column = node.column or ""
    if node.threshold is not None:
        return (
            f"{column} < {node.threshold:g}",
            f"{column} >= {node.threshold:g}",
        )
    return (
        f"{column} = '{node.category}'",
        f"{column} <> '{node.category}'",
    )


def _route_left(node: TreeNode, table: Table) -> np.ndarray:
    """Boolean mask of all table rows that follow the node's left branch."""
    from repro.tree.cart import _left_mask

    indices = np.arange(table.n_rows, dtype=np.intp)
    out = np.zeros(table.n_rows, dtype=bool)
    goes_left = _left_mask(node, table.column(node.column or ""), indices)
    out[indices[goes_left]] = True
    return out

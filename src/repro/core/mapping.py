"""Map construction — the compatibility facade over the staged pipeline.

The mapping logic itself lives in :mod:`repro.core.pipeline` as an
explicit staged pipeline (Sample → Preprocess → Distances → Cluster →
Describe → Count) with per-stage memoization; this module keeps the
historical entry points:

* :func:`build_map` — one synchronous build over an already-selected
  table, threading one RNG through the stages sequentially.  Bit-
  identical to the original single-pass implementation at the same
  seed (the pipeline's stages consume randomness in the same order).
* :func:`build_map_cached` — the cache-aware form; long-lived callers
  (the engine, the service) hold a
  :class:`~repro.core.pipeline.MapBuilder` instead so stage artifacts
  and statistics persist across calls.
* :func:`map_cache_key` / :func:`cache_key_seed` — the canonical cache
  key of a map request and the key→seed derivation (both re-exported
  from the pipeline module, their canonical home).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BlaeuConfig
from repro.core.datamap import DataMap
from repro.core.pipeline import (
    MapBuilder,
    MapBuildError,
    MapPipeline,
    cache_key_seed,
    map_cache_key,
)
from repro.table.predicates import Predicate
from repro.table.table import Table

__all__ = [
    "MapBuildError",
    "build_map",
    "build_map_cached",
    "cache_key_seed",
    "map_cache_key",
]


def build_map(
    selection: Table,
    columns: tuple[str, ...],
    config: BlaeuConfig | None = None,
    rng: np.random.Generator | None = None,
    k: int | None = None,
    count_mode: str | None = None,
) -> DataMap:
    """Build the data map of ``selection`` over the active ``columns``.

    Parameters
    ----------
    selection:
        The tuples matching the user's current query (already selected).
    columns:
        Active column set (typically a theme).
    config:
        Engine knobs; defaults to :class:`BlaeuConfig`.
    rng:
        Randomness for sampling / CLARA / silhouette, threaded through
        the stages sequentially.
    k:
        Force a specific cluster count instead of silhouette selection.
    count_mode:
        Override ``config.count_mode`` (``"exact"``/``"approximate"``).
    """
    config = config or BlaeuConfig()
    rng = rng or np.random.default_rng(config.seed)
    pipeline = MapPipeline(selection, tuple(columns), config, k=k, rng=rng)
    return pipeline.build(count_mode)


def build_map_cached(
    table: Table,
    columns: tuple[str, ...],
    config: BlaeuConfig | None = None,
    rng: np.random.Generator | None = None,
    k: int | None = None,
    cache: "object | None" = None,
    selection: Predicate | None = None,
) -> DataMap:
    """:func:`build_map` behind an optional shared result cache.

    ``table`` is the *base* table; ``selection`` (default: everything)
    is applied lazily, only on a cache miss — a hit costs one lookup,
    not an O(rows) predicate evaluation.  ``cache`` is any object with
    ``get(key)``/``put(key, value)`` (see
    :class:`repro.service.cache.LRUCache`).  On a hit the stored
    :class:`DataMap` is returned as-is — maps are treated as immutable
    once built, so sharing one across sessions is safe.

    When a cache is installed the build RNG is derived from the stage
    keys (via :func:`cache_key_seed`), so the map an action path
    produces never depends on cache warmth or on which session built
    it first; without a cache the caller's ``rng`` stream is used,
    preserving the original session-sequential behaviour.
    """
    builder = MapBuilder(result_cache=cache)
    return builder.build(
        table,
        tuple(columns),
        config=config,
        selection=selection,
        k=k,
        rng=rng,
    )

"""The staged map pipeline (paper §3, Figure 3) with per-stage reuse.

:func:`repro.core.mapping.build_map` used to be one opaque function, so
every navigation action — zoom, project, k-override, rollback-and-re-map
— recomputed all of sampling, preprocessing, distance work, clustering,
description and exact counting, and blocked on the exact-count routing
pass over the full selection.  This module makes the pipeline explicit:

========== ============================================================
stage       artifact
========== ============================================================
sample      the sampled slice of the selection (+ selection mask/size)
preprocess  the :class:`~repro.core.preprocess.FeatureSpace`
distances   the shared pairwise matrix (``None`` at CLARA scale)
cluster     the clustering, its silhouette, per-leaf silhouettes
describe    the pruned CART tree, its fidelity, cluster exemplars
count       the finished :class:`~repro.core.datamap.DataMap`
========== ============================================================

Each stage produces an immutable artifact memoized under a
content-addressed key (table fingerprint + config digest + canonical
action path + the stage's own inputs) in the shared service cache, so
navigation re-enters the pipeline mid-way: a k-override re-enters at the
Cluster stage on the cached sample/space/distance matrix; re-mapping the
same selection under another theme reuses the Sample artifact; repeating
an action path anywhere returns the finished map.

**RNG discipline.**  Cache-managed builds derive their randomness from
the sample artifact's key (the same convention as
:func:`~repro.core.pipeline.cache_key_seed` elsewhere), and every
downstream stage resumes the post-sample generator state recorded in the
artifact — never a live generator whose position depends on which
earlier actions hit the cache.  Two consequences, both tested:

* results are independent of cache warmth and of the stage the build
  entered at, and
* the staged build is **bit-identical** to the legacy single-pass
  builder fed one sequential generator with the same starting state
  (the stages consume randomness in exactly the order the single pass
  did).

**Two-phase counting.**  With ``config.count_mode = "approximate"``,
maps return immediately with sample-extrapolated region counts
(``counts_status="approximate"``; each region carries a 95% ``±``
bound from the sample fraction), and the exact chunked routing pass —
in-memory and store residencies alike — can run later via
:func:`refine_exact` (the service pushes it through its worker pool and
patches the shared cache).  The refined map is bit-identical to a
blocking exact build.
"""

from __future__ import annotations

import copy
import hashlib
import math
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.stages import (
    ClusterParams,
    cluster_features,
    leaf_silhouettes,
    shared_distance_matrix,
)
from repro.core.config import BlaeuConfig
from repro.core.datamap import DataMap, Region
from repro.core.preprocess import FeatureSpace, preprocess
from repro.obs.metrics import get_metrics
from repro.obs.profile import profile_block
from repro.obs.trace import get_tracer, note
from repro.resilience.deadline import checkpoint
from repro.resilience.faults import fault_point
from repro.table.predicates import And, Comparison, Everything, Predicate
from repro.table.sampling import uniform_sample
from repro.table.table import Table
from repro.tree.cart import DecisionTree, TreeNode, fit_tree
from repro.tree.prune import prune_for_legibility

__all__ = [
    "MapBuildError",
    "MapBuilder",
    "MapPipeline",
    "STAGES",
    "cache_key_seed",
    "map_cache_key",
    "refine_exact",
]

#: Pipeline stages, in execution order.
STAGES = ("sample", "preprocess", "distances", "cluster", "describe", "count")

#: z-score of the two-sided 95% interval behind ``n_rows_error``.
_Z95 = 1.96


class MapBuildError(ValueError):
    """A map request the engine cannot satisfy as posed.

    Raised for client-fixable conditions — an empty active-column set,
    a selection too small to cluster — so the serving layer can answer
    with a structured ``400`` instead of a generic engine error.
    Subclasses :class:`ValueError`, so pre-existing ``except
    ValueError`` callers keep working.
    """


def cache_key_seed(cache_key: object) -> int:
    """A deterministic RNG seed derived from a cache key.

    Cache-aware builds seed their randomness from keys instead of from a
    session-local RNG stream: otherwise the RNG state a build sees would
    depend on which earlier actions hit the cache, and the same action
    path could yield different maps depending on cache warmth.
    """
    digest = hashlib.sha256(repr(cache_key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def map_cache_key(
    table: Table,
    selection_sql: str,
    columns: tuple[str, ...],
    config: BlaeuConfig,
    k: int | None = None,
) -> tuple[str, str, str, tuple[str, ...], int | None]:
    """The canonical cache key of one map-building request.

    Combines the *content* fingerprint of the base table, the config
    digest and the canonical action path (selection predicate rendered
    as SQL, plus the active columns) — so two sessions that navigated to
    the same place share a key even if they got there independently.
    """
    return (table.fingerprint(), config.digest(), selection_sql, tuple(columns), k)


# ----------------------------------------------------------------------
# Stage artifacts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SampleArtifact:
    """The Sample stage's output: the slice the pipeline clusters.

    ``rng_state`` is the generator state *after* sampling; the Cluster
    stage resumes it, so a build entering mid-pipeline consumes exactly
    the random stream a cold single pass would have.
    """

    sample: Table
    selection_mask: np.ndarray | None
    n_selection: int
    rng_state: dict


@dataclass(frozen=True)
class SpaceArtifact:
    """The Preprocess stage's output (the clustering feature space)."""

    space: FeatureSpace


@dataclass(frozen=True)
class DistanceArtifact:
    """The Distances stage's output (``None`` matrix at CLARA scale)."""

    matrix: np.ndarray | None


@dataclass(frozen=True)
class ClusterArtifact:
    """The Cluster stage's output for one (sample, columns, k) triple."""

    clustering: object
    silhouette: float
    leaf_silhouettes: dict[int, float]


@dataclass(frozen=True)
class DescribeArtifact:
    """The Describe stage's output: the pruned tree and its trimmings."""

    tree: DecisionTree
    fidelity: float
    exemplars: dict[int, dict[str, object]]


class _StageRecorder:
    """Per-run stage bookkeeping the builder folds into its totals."""

    def __init__(self) -> None:
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}
        self.seconds: dict[str, float] = {}

    def record(self, stage: str, hit: bool, seconds: float) -> None:
        bucket = self.hits if hit else self.misses
        bucket[stage] = bucket.get(stage, 0) + 1
        self.seconds[stage] = seconds


# ----------------------------------------------------------------------
# The pipeline (one build request)
# ----------------------------------------------------------------------


class MapPipeline:
    """One map request, executed stage by stage with memoized re-entry.

    Parameters
    ----------
    table:
        The *base* table (in-memory or store-backed).
    columns:
        Active column set.
    config:
        Engine knobs.
    selection:
        Selection predicate over ``table`` (``None`` = everything).  It
        is evaluated as a pushdown scan on store-backed tables; the full
        selection is never materialized.
    k:
        Force a cluster count instead of silhouette selection.
    cache:
        Stage-artifact memo (any ``get``/``put`` mapping; the service's
        shared cache).  ``None`` disables stage reuse.
    rng:
        Session generator for cache-less sequential builds.  ``None``
        (the cache-managed mode) seeds the chain from the sample
        artifact's key instead.
    recorder:
        Stage hit/miss/timing sink (the builder's).
    """

    def __init__(
        self,
        table: Table,
        columns: tuple[str, ...],
        config: BlaeuConfig,
        selection: Predicate | None = None,
        k: int | None = None,
        cache: object | None = None,
        rng: np.random.Generator | None = None,
        recorder: _StageRecorder | None = None,
    ) -> None:
        if not columns:
            raise MapBuildError("build_map needs at least one active column")
        self._table = table
        self._columns = tuple(columns)
        self._config = config
        self._selection = selection
        self._selection_sql = _selection_sql(selection)
        self._k = k
        self._cache = cache
        self._rng = rng
        self._recorder = recorder or _StageRecorder()
        self._local: dict[str, object] = {}
        self._base_key: tuple | None = None

    # ------------------------------------------------------------------
    # Stage plumbing
    # ------------------------------------------------------------------

    def _key_base(self) -> tuple:
        """The content prefix of every stage key, computed on demand.

        Lazy because cache-less sequential builds never consult keys —
        hashing the table's bytes per navigation would be pure waste.
        """
        if self._base_key is None:
            self._base_key = (
                self._table.fingerprint(),
                self._config.digest(),
                self._selection_sql,
            )
        return self._base_key

    def _stage_key(self, stage: str, *parts: object) -> tuple | None:
        """A stage's cache key, or ``None`` when no cache is consulted."""
        if self._cache is None:
            return None
        return ("stage", stage, *self._key_base(), *parts)

    def _stage(self, name: str, key: tuple | None, compute):
        """Run one stage through the per-run memo and the shared cache.

        Each cache-consulting or computing pass runs under a
        ``stage.<name>`` span carrying the cache outcome, and the
        computation itself sits inside the opt-in profiler hook.
        """
        if name in self._local:
            return self._local[name]
        # Cooperative deadline checkpoint + chaos hook: an expired
        # request aborts here, between stages, instead of computing a
        # result nobody is waiting for.  A cached or completed stage is
        # never torn — the abort happens before compute starts.
        checkpoint("stage." + name)
        fault_point("stage." + name)
        with get_tracer().span("stage." + name) as span:
            started = time.perf_counter()
            if self._cache is not None:
                hit = self._cache.get(key)
                if hit is not None:
                    self._recorder.record(
                        name, hit=True, seconds=time.perf_counter() - started
                    )
                    self._local[name] = hit
                    if span.enabled:
                        span.set("cache_hit", True)
                    return hit
            with profile_block("stage." + name):
                value = compute()
            if self._cache is not None:
                self._cache.put(key, value)
            seconds = time.perf_counter() - started
            self._recorder.record(name, hit=False, seconds=seconds)
            self._local[name] = value
            if span.enabled:
                span.set("cache_hit", False)
            return value

    def _params(self) -> ClusterParams:
        config = self._config
        return ClusterParams(
            k_values=config.map_k_values,
            clara_threshold=config.clara_threshold,
            clara_draws=config.clara_draws,
            clara_sample_size=config.clara_sample_size,
            clara_jobs=config.clara_jobs,
            silhouette_subsamples=config.silhouette_subsamples,
            silhouette_subsample_size=config.silhouette_subsample_size,
            silhouette_exact_threshold=config.silhouette_exact_threshold,
            dtype=config.distance_dtype,
        )

    def _chain_rng(self) -> np.random.Generator:
        """The generator the Sample stage starts from."""
        if self._rng is not None:
            return self._rng
        return np.random.default_rng(
            cache_key_seed(("pipeline", *self._key_base()))
        )

    def _resume_rng(self, state: dict) -> np.random.Generator:
        """A generator resumed at a recorded post-stage state."""
        if self._rng is not None:
            # Cache-less sequential mode: the session generator already
            # sits at this state (the Sample stage just advanced it).
            return self._rng
        generator = np.random.default_rng(0)
        generator.bit_generator.state = copy.deepcopy(state)
        return generator

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def sample_artifact(self) -> SampleArtifact:
        """Stage 0: sample the selection (pushdown on store residency)."""
        key = self._stage_key("sample")
        return self._stage("sample", key, self._compute_sample)

    def _compute_sample(self) -> SampleArtifact:
        table, config = self._table, self._config
        rng = self._chain_rng()
        predicate = self._selection
        if predicate is None or isinstance(predicate, Everything):
            mask, n_selection = None, table.n_rows
        else:
            scan = getattr(table, "scan_mask", None)
            mask = (
                scan(predicate)
                if scan is not None
                else np.asarray(predicate.mask(table), dtype=bool)
            )
            n_selection = int(mask.sum())
        if n_selection < 2:
            raise MapBuildError(
                f"selection has {n_selection} rows; nothing to cluster"
            )
        # Only the sampled slice is ever materialized; store-backed
        # tables gather just the picked rows through their memory maps.
        if n_selection > config.map_sample_size:
            if mask is None:
                sample = table.sample(config.map_sample_size, rng=rng)
            else:
                picked = uniform_sample(n_selection, config.map_sample_size, rng)
                sample = table.take(np.flatnonzero(mask)[picked])
        elif mask is not None:
            sample = table.take(np.flatnonzero(mask))
        elif getattr(table, "iter_chunks", None) is not None:
            # A store-backed table small enough to skip sampling still
            # needs one in-memory copy for the vectorized stages.
            sample = table.take(np.arange(table.n_rows, dtype=np.intp))
        else:
            sample = table
        return SampleArtifact(
            sample=sample,
            selection_mask=mask,
            n_selection=n_selection,
            rng_state=copy.deepcopy(rng.bit_generator.state),
        )

    def space_artifact(self) -> SpaceArtifact:
        """Stage 1: preprocess the sample into clustering vectors."""
        key = self._stage_key("space", self._columns)

        def compute() -> SpaceArtifact:
            sample = self.sample_artifact().sample
            return SpaceArtifact(
                space=preprocess(
                    sample,
                    columns=self._columns,
                    max_categorical_cardinality=(
                        self._config.max_categorical_cardinality
                    ),
                )
            )

        return self._stage("preprocess", key, compute)

    def distance_artifact(self) -> DistanceArtifact:
        """Stage 2a: the shared pairwise matrix (``None`` at CLARA scale)."""
        key = self._stage_key("distances", self._columns)

        def compute() -> DistanceArtifact:
            space = self.space_artifact().space
            return DistanceArtifact(
                matrix=shared_distance_matrix(space.matrix, self._params())
            )

        return self._stage("distances", key, compute)

    def cluster_artifact(self) -> ClusterArtifact:
        """Stage 2b: cluster the vectors; k forced or by silhouette."""
        key = self._stage_key("cluster", self._columns, self._k)

        def compute() -> ClusterArtifact:
            space = self.space_artifact().space
            distances = self.distance_artifact().matrix
            params = self._params()
            rng = self._resume_rng(self.sample_artifact().rng_state)
            outcome = cluster_features(
                space.matrix, params, rng, forced_k=self._k, distances=distances
            )
            leaves = leaf_silhouettes(
                space.matrix, outcome.clustering, params, rng, distances=distances
            )
            return ClusterArtifact(
                clustering=outcome.clustering,
                silhouette=outcome.silhouette,
                leaf_silhouettes=leaves,
            )

        return self._stage("cluster", key, compute)

    def describe_artifact(self) -> DescribeArtifact:
        """Stage 3: describe the clusters with a pruned CART tree."""
        key = self._stage_key("describe", self._columns, self._k)

        def compute() -> DescribeArtifact:
            config = self._config
            sample = self.sample_artifact().sample
            space = self.space_artifact().space
            clustering = self.cluster_artifact().clustering
            describable = [
                name for name in self._columns if name in space.used_columns
            ]
            tree = fit_tree(
                sample,
                clustering.labels,
                feature_names=describable,
                params=config.tree_params,
            )
            tree = prune_for_legibility(
                tree,
                target_leaves=clustering.k * config.prune_leaf_factor,
                min_accuracy=config.prune_min_fidelity,
            )
            return DescribeArtifact(
                tree=tree,
                fidelity=tree.accuracy(sample, clustering.labels),
                exemplars=_exemplars(sample, clustering, self._columns),
            )

        return self._stage("describe", key, compute)

    # ------------------------------------------------------------------
    # Stage 4: counting, approximate or exact
    # ------------------------------------------------------------------

    def build(self, count_mode: str | None = None) -> DataMap:
        """Run the pipeline to a finished map.

        ``count_mode`` overrides ``config.count_mode``.  Approximate
        counting degenerates to exact whenever the sample *is* the
        selection (small selections never show approximate counts).
        """
        mode = count_mode or self._config.count_mode
        # Resolve in forward order so each stage's recorded timing is
        # its own work (the getters resolve dependencies lazily, which
        # would otherwise bill a stage for its whole upstream chain).
        sample_art = self.sample_artifact()
        self.space_artifact()
        self.distance_artifact()
        cluster = self.cluster_artifact()
        describe = self.describe_artifact()
        approximate = (
            mode == "approximate"
            and sample_art.sample.n_rows < sample_art.n_selection
        )
        started = time.perf_counter()
        with get_tracer().span("stage.count") as span, profile_block(
            "stage.count"
        ):
            if approximate:
                root = _approximate_regions(
                    describe.tree,
                    sample_art.sample,
                    sample_art.n_selection,
                    cluster.leaf_silhouettes,
                    describe.exemplars,
                )
                status: str = "approximate"
                refinement: object | None = describe.tree
            else:
                root = _exact_regions(
                    describe.tree,
                    self._table,
                    sample_art.selection_mask,
                    cluster.leaf_silhouettes,
                    describe.exemplars,
                )
                status, refinement = "exact", None
            if span.enabled:
                span.set("mode", status)
        self._recorder.record(
            "count", hit=False, seconds=time.perf_counter() - started
        )
        return DataMap(
            root=root,
            columns=self._columns,
            k=cluster.clustering.k,
            silhouette=cluster.silhouette,
            fidelity=describe.fidelity,
            sample_size=sample_art.sample.n_rows,
            counts_status=status,
            refinement=refinement,
        )


# ----------------------------------------------------------------------
# The per-engine builder (mirrors repro.graph.dependency.GraphBuilder)
# ----------------------------------------------------------------------


class MapBuilder:
    """Map construction with navigation-aware, cross-session reuse.

    One builder is shared per engine.  An optional ``result_cache``
    (any ``get(key)``/``put(key, value)`` mapping — the service installs
    its shared map cache) memoizes finished maps *and*, when
    ``config.pipeline_reuse`` is on, every intermediate stage artifact,
    so navigation actions re-enter the pipeline mid-way instead of
    rebuilding from the table.

    With a result cache installed the build RNG derives from the cache
    key chain (see the module docstring); without one the caller's
    generator is threaded through the stages sequentially, preserving
    the original session behaviour bit for bit.
    """

    def __init__(
        self,
        result_cache: object | None = None,
        metrics: object | None = None,
    ) -> None:
        self._result_cache = result_cache
        self._metrics = metrics
        self._lock = threading.Lock()
        self._builds = 0
        self._refinements = 0
        self._map_hits = 0
        self._map_misses = 0
        self._stage_hits = {stage: 0 for stage in STAGES}
        self._stage_misses = {stage: 0 for stage in STAGES}
        self._last_stage_seconds: dict[str, float] = {}
        self._last_build_seconds = 0.0

    @property
    def result_cache(self) -> object | None:
        """The shared result cache (``None`` when memoization is off)."""
        return self._result_cache

    def set_result_cache(self, cache: object | None) -> None:
        """Install (or remove) the shared result cache."""
        self._result_cache = cache

    def set_metrics(self, metrics: object | None) -> None:
        """Override the metric sink (tests isolating their counters).

        By default builds, refinements and per-stage cache hits/misses
        report into the process-global :func:`repro.obs.get_metrics`
        registry — the service and the CLI no longer wire anything.
        ``None`` restores the global default.
        """
        self._metrics = metrics

    def stats(self) -> dict[str, object]:
        """Build, refinement and per-stage cache counters."""
        with self._lock:
            return {
                "builds": self._builds,
                "refinements": self._refinements,
                "map_cache_hits": self._map_hits,
                "map_cache_misses": self._map_misses,
                "stage_hits": dict(self._stage_hits),
                "stage_misses": dict(self._stage_misses),
                "last_stage_seconds": dict(self._last_stage_seconds),
                "last_build_seconds": self._last_build_seconds,
            }

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build(
        self,
        table: Table,
        columns: tuple[str, ...],
        config: BlaeuConfig | None = None,
        selection: Predicate | None = None,
        k: int | None = None,
        rng: np.random.Generator | None = None,
        count_mode: str | None = None,
    ) -> DataMap:
        """Build (or recall) the map of ``selection`` over ``columns``.

        A cache hit costs one lookup — the selection predicate is never
        evaluated.  ``count_mode`` overrides ``config.count_mode``; an
        exact request that hits a cached approximate map upgrades it in
        place (and re-caches the exact result).
        """
        config = config or BlaeuConfig()
        columns = tuple(columns)
        mode = count_mode or config.count_mode
        started = time.perf_counter()
        with get_tracer().span("map.build") as span:
            cache = self._result_cache
            key = None
            if cache is not None:
                key = map_cache_key(
                    table, _selection_sql(selection), columns, config, k=k
                )
                hit = cache.get(key)
                if hit is not None:
                    with self._lock:
                        self._map_hits += 1
                        # A hit is the whole build: the telemetry must
                        # show the lookup, not the previous cold build's
                        # timings.
                        self._last_build_seconds = time.perf_counter() - started
                    self._count("blaeu_pipeline_map_hits_total")
                    note("map_cache", "hit")
                    if span.enabled:
                        span.set("cache_hit", True)
                    if hit.counts_status == "exact" or mode == "approximate":
                        return hit
                    return self._upgrade(
                        hit, table, columns, config, selection, k, key
                    )
                with self._lock:
                    self._map_misses += 1
                self._count("blaeu_pipeline_map_misses_total")
                rng = None  # cache-managed builds are key-seeded
            elif rng is None:
                rng = np.random.default_rng(config.seed)
            note("map_cache", "miss")
            if span.enabled:
                span.set("cache_hit", False)
                span.set("table", getattr(table, "name", ""))
                span.set("mode", mode)
            recorder = _StageRecorder()
            pipeline = MapPipeline(
                table,
                columns,
                config,
                selection=selection,
                k=k,
                cache=cache if config.pipeline_reuse else None,
                rng=rng,
                recorder=recorder,
            )
            data_map = pipeline.build(mode)
            if cache is not None and key is not None:
                cache.put(key, data_map)
            self._absorb(recorder, time.perf_counter() - started)
            return data_map

    def refine(
        self,
        table: Table,
        columns: tuple[str, ...],
        config: BlaeuConfig | None = None,
        selection: Predicate | None = None,
        k: int | None = None,
        current_map: DataMap | None = None,
    ) -> DataMap:
        """Upgrade an approximate map to exact counts.

        Prefers a cached exact map (another session may have refined
        first); otherwise runs the exact chunked routing pass over the
        full selection using the map's own description tree, patches the
        shared cache, and returns the exact map.  The result is
        bit-identical to a blocking exact build of the same request.
        """
        config = config or BlaeuConfig()
        columns = tuple(columns)
        with get_tracer().span("map.refine") as span:
            cache = self._result_cache
            key = None
            if cache is not None:
                key = map_cache_key(
                    table, _selection_sql(selection), columns, config, k=k
                )
                hit = cache.get(key)
                if hit is not None:
                    if hit.counts_status == "exact":
                        if span.enabled:
                            span.set("cache_hit", True)
                        return hit
                    current_map = hit
            if current_map is None:
                return self.build(
                    table,
                    columns,
                    config=config,
                    selection=selection,
                    k=k,
                    count_mode="exact",
                )
            if current_map.counts_status == "exact":
                return current_map
            return self._upgrade(
                current_map, table, columns, config, selection, k, key
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _upgrade(
        self,
        approximate: DataMap,
        table: Table,
        columns: tuple[str, ...],
        config: BlaeuConfig,
        selection: Predicate | None,
        k: int | None,
        key: tuple | None,
    ) -> DataMap:
        started = time.perf_counter()
        if approximate.refinement is not None:
            with get_tracer().span("map.upgrade") as span:
                exact = refine_exact(approximate, table, selection)
                if span.enabled:
                    span.set("table", getattr(table, "name", ""))
        else:
            # No refinement context (e.g. a foreign cache entry): rerun
            # the pipeline exactly; cached stage artifacts keep it cheap.
            recorder = _StageRecorder()
            cache = self._result_cache
            exact = MapPipeline(
                table,
                columns,
                config,
                selection=selection,
                k=k,
                cache=cache if config.pipeline_reuse else None,
                recorder=recorder,
            ).build("exact")
            self._absorb(recorder, time.perf_counter() - started)
        if self._result_cache is not None and key is not None:
            self._result_cache.put(key, exact)
        with self._lock:
            self._refinements += 1
            self._last_stage_seconds["count"] = time.perf_counter() - started
        self._count("blaeu_pipeline_refinements_total")
        return exact

    def _absorb(self, recorder: _StageRecorder, seconds: float) -> None:
        with self._lock:
            self._builds += 1
            self._last_build_seconds = seconds
            for stage, count in recorder.hits.items():
                self._stage_hits[stage] = self._stage_hits.get(stage, 0) + count
            for stage, count in recorder.misses.items():
                self._stage_misses[stage] = (
                    self._stage_misses.get(stage, 0) + count
                )
            self._last_stage_seconds.update(recorder.seconds)
        self._count("blaeu_pipeline_builds_total")
        metrics = self._registry()
        metrics.observe("blaeu_pipeline_build_seconds", seconds)
        for stage, count in recorder.hits.items():
            self._count(f"blaeu_pipeline_{stage}_hits_total", count)
        for stage, count in recorder.misses.items():
            self._count(f"blaeu_pipeline_{stage}_misses_total", count)
            # Per-stage latency histograms cover computed stages only;
            # a cache hit's lookup time would drown the signal.
            metrics.observe(
                f"blaeu_pipeline_stage_seconds_{stage}",
                recorder.seconds.get(stage, 0.0),
            )

    def _registry(self):
        """The metric sink: the explicit override or the global registry."""
        return self._metrics if self._metrics is not None else get_metrics()

    def _count(self, name: str, by: int = 1) -> None:
        if by:
            self._registry().increment(name, by)


# ----------------------------------------------------------------------
# Counting passes
# ----------------------------------------------------------------------


def refine_exact(
    approximate: DataMap,
    table: Table,
    selection: Predicate | None = None,
) -> DataMap:
    """The exact-count upgrade of an approximate map.

    Routes the full selection through the map's own description tree —
    one chunked pushdown pass over just the split columns on
    store-backed tables — and rebuilds the region hierarchy with exact
    counts.  Everything else (clustering, silhouettes, tree, exemplars,
    fidelity) is carried over unchanged, so the result is bit-identical
    to a blocking exact build of the same request.
    """
    tree = approximate.refinement
    if not isinstance(tree, DecisionTree):
        raise ValueError(
            "map carries no refinement context; rebuild it with "
            "count_mode='exact' instead"
        )
    if selection is None or isinstance(selection, Everything):
        mask = None
    else:
        scan = getattr(table, "scan_mask", None)
        mask = (
            scan(selection)
            if scan is not None
            else np.asarray(selection.mask(table), dtype=bool)
        )
    leaves = [leaf for leaf in approximate.leaves() if leaf.cluster is not None]
    root = _exact_regions(
        tree,
        table,
        mask,
        {leaf.cluster: leaf.silhouette for leaf in leaves},
        {leaf.cluster: leaf.exemplar for leaf in leaves},
    )
    return DataMap(
        root=root,
        columns=approximate.columns,
        k=approximate.k,
        silhouette=approximate.silhouette,
        fidelity=approximate.fidelity,
        sample_size=approximate.sample_size,
        counts_status="exact",
        refinement=None,
    )


def _exact_regions(
    tree: DecisionTree,
    table: Table,
    selection_mask: np.ndarray | None,
    leaf_silhouettes: dict[int, float],
    exemplars: dict[int, dict[str, object]],
) -> Region:
    """Region hierarchy with exact counts over the full selection.

    In-memory selections are gathered once and routed subset-sized (a
    zoomed region of a huge table must not pay per-node full-table
    masks); store-backed selections stay on disk — the chunked router
    reads only the split columns over the full store, and the selection
    mask restricts the counts.
    """
    if selection_mask is not None and getattr(table, "iter_chunks", None) is None:
        subset = table.filter(selection_mask)
        return _tree_to_regions(
            tree.root,
            subset.n_rows,
            _left_router(tree, subset),
            leaf_silhouettes,
            exemplars,
        )
    row_mask = (
        selection_mask
        if selection_mask is not None
        else np.ones(table.n_rows, dtype=bool)
    )
    return _tree_to_regions(
        tree.root,
        table.n_rows,
        _left_router(tree, table),
        leaf_silhouettes,
        exemplars,
        row_mask=row_mask,
    )


def _approximate_regions(
    tree: DecisionTree,
    sample: Table,
    n_selection: int,
    leaf_silhouettes: dict[int, float],
    exemplars: dict[int, dict[str, object]],
) -> Region:
    """Region hierarchy with sample-extrapolated counts and 95% bounds.

    Each region's count is its sample share scaled to the selection; the
    error bound is the normal approximation of the binomial sampling
    error with a finite-population correction.  At the boundaries (a
    region the sample saw none — or all — of) the Wald term degenerates
    to a false certainty of 0, so the rule of three supplies the 95%
    bound instead.  The root's count is the selection size itself —
    exact, and therefore carrying no error bound at all.
    """
    m = sample.n_rows

    def counter(row_mask: np.ndarray) -> tuple[int, int | None]:
        in_sample = int(row_mask.sum())
        p = in_sample / m
        estimate = int(round(p * n_selection))
        correction = math.sqrt(max(n_selection - m, 0) / max(n_selection - 1, 1))
        if in_sample in (0, m):
            spread = 3.0 / m
        else:
            spread = _Z95 * math.sqrt(p * (1.0 - p) / m)
        return estimate, int(math.ceil(n_selection * spread * correction))

    root = _tree_to_regions(
        tree.root,
        m,
        _left_router(tree, sample),
        leaf_silhouettes,
        exemplars,
        row_mask=np.ones(m, dtype=bool),
        counter=counter,
    )
    root.n_rows = n_selection
    root.n_rows_error = None
    return root


def _exemplars(
    sample: Table,
    clustering,
    columns: tuple[str, ...],
) -> dict[int, dict[str, object]]:
    """Medoid tuple per cluster, restricted to the active columns."""
    out: dict[int, dict[str, object]] = {}
    for cluster in range(clustering.k):
        medoid_row = int(clustering.medoids[cluster])
        row = sample.row(medoid_row)
        out[cluster] = {name: row[name] for name in columns if name in row}
    return out


# ----------------------------------------------------------------------
# Tree → regions
# ----------------------------------------------------------------------


def _left_router(tree: DecisionTree, selection: Table):
    """A ``node -> goes-left mask`` function over the full selection.

    In-memory selections evaluate lazily per node (the column arrays are
    already resident).  Store-backed selections — anything exposing
    ``iter_chunks`` — are routed in **one chunked pass** that reads only
    the columns the tree actually splits on, so exact region counts over
    millions of rows cost one bounded scan instead of per-node
    full-column materializations.
    """
    iter_chunks = getattr(selection, "iter_chunks", None)
    if iter_chunks is None:
        return lambda node: _route_left(node, selection)

    from repro.tree.cart import _left_mask

    internal = [node for node in tree.root.walk() if not node.is_leaf]
    masks = {
        id(node): np.zeros(selection.n_rows, dtype=bool) for node in internal
    }
    if internal:
        needed = tuple(sorted({node.column or "" for node in internal}))
        partitions = getattr(selection, "partitions", ())
        scan_jobs = getattr(selection, "scan_jobs", None)
        if scan_jobs not in (None, 1) and len(partitions) > 1:
            # Partition-parallel routing: each worker routes its row
            # range through the same tree (walk order fixes the
            # node <-> segment correspondence) and the segments are
            # stitched back positionally — bit-identical to the serial
            # chunk loop below at any worker count.
            from repro.store.parallel import router_task, run_partition_tasks

            results = run_partition_tasks(
                router_task,
                [
                    (
                        str(selection.root),
                        tree.root,
                        needed,
                        partition.start,
                        partition.stop,
                        selection.chunk_rows,
                    )
                    for partition in partitions
                ],
                scan_jobs,
            )
            for partition, (segments, _, _) in zip(partitions, results):
                for node, segment in zip(internal, segments):
                    masks[id(node)][partition.start : partition.stop] = segment
        else:
            for start, stop, chunk in iter_chunks(columns=needed):
                checkpoint("count.chunk")
                local = np.arange(stop - start, dtype=np.intp)
                for node in internal:
                    column = chunk.column(node.column or "")
                    masks[id(node)][start:stop] = _left_mask(
                        node, column, local
                    )
    return lambda node: masks[id(node)]


def _exact_counter(row_mask: np.ndarray) -> tuple[int, int | None]:
    return int(row_mask.sum()), None


def _tree_to_regions(
    node: TreeNode,
    n_rows: int,
    route_left,
    leaf_silhouettes: dict[int, float],
    exemplars: dict[int, dict[str, object]],
    region_id: str = "r",
    label: str = "all rows",
    path: tuple[Predicate, ...] = (),
    row_mask: np.ndarray | None = None,
    counter=_exact_counter,
) -> Region:
    """Recursively mirror the description tree as a region hierarchy.

    ``row_mask`` tracks which routed rows reach this node, so counts
    come from the actual tree routing (missing values follow the fitted
    majority branch) rather than from re-evaluating predicates, which
    would disagree on missing cells.  ``route_left`` supplies the
    per-node routing masks (see :func:`_left_router`); ``counter`` turns
    a mask into ``(n_rows, n_rows_error)`` — exact popcount by default,
    sample extrapolation on the approximate path.
    """
    if row_mask is None:
        row_mask = np.ones(n_rows, dtype=bool)
    predicate: Predicate = And.of(*path) if path else Everything()
    count, error = counter(row_mask)

    if node.is_leaf:
        cluster = node.prediction
        return Region(
            region_id=region_id,
            label=label,
            predicate=predicate,
            n_rows=count,
            depth=node.depth,
            cluster=cluster,
            silhouette=leaf_silhouettes.get(cluster),
            exemplar=exemplars.get(cluster, {}),
            n_rows_error=error,
        )

    assert node.left is not None and node.right is not None
    left_predicate, right_predicate = _split_predicates(node)
    left_label, right_label = _split_labels(node)
    goes_left = route_left(node)
    left_mask = row_mask & goes_left
    right_mask = row_mask & ~goes_left

    region = Region(
        region_id=region_id,
        label=label,
        predicate=predicate,
        n_rows=count,
        depth=node.depth,
        n_rows_error=error,
    )
    region.children = [
        _tree_to_regions(
            node.left,
            n_rows,
            route_left,
            leaf_silhouettes,
            exemplars,
            region_id=region_id + "0",
            label=left_label,
            path=path + (left_predicate,),
            row_mask=left_mask,
            counter=counter,
        ),
        _tree_to_regions(
            node.right,
            n_rows,
            route_left,
            leaf_silhouettes,
            exemplars,
            region_id=region_id + "1",
            label=right_label,
            path=path + (right_predicate,),
            row_mask=right_mask,
            counter=counter,
        ),
    ]
    return region


def _split_predicates(node: TreeNode) -> tuple[Predicate, Predicate]:
    """The (left, right) predicates of a split, missing-values included.

    The fitted tree routes missing cells along the node's majority branch;
    the predicates say so explicitly (``… OR x IS NULL``), so that the SQL
    a region displays selects *exactly* the tuples the region counts.
    """
    from repro.table.predicates import IsMissing, Or

    column = node.column or ""
    if node.threshold is not None:
        left: Predicate = Comparison(column, "<", node.threshold)
        right: Predicate = Comparison(column, ">=", node.threshold)
    else:
        category = node.category or ""
        left = Comparison(column, "==", category)
        right = Comparison(column, "!=", category)
    if node.missing_goes_left:
        left = Or((left, IsMissing(column)))
    else:
        right = Or((right, IsMissing(column)))
    return left, right


def _split_labels(node: TreeNode) -> tuple[str, str]:
    """Short display labels for the two branches (no IS NULL noise)."""
    column = node.column or ""
    if node.threshold is not None:
        return (
            f"{column} < {node.threshold:g}",
            f"{column} >= {node.threshold:g}",
        )
    return (
        f"{column} = '{node.category}'",
        f"{column} <> '{node.category}'",
    )


def _route_left(node: TreeNode, table: Table) -> np.ndarray:
    """Boolean mask of all table rows that follow the node's left branch."""
    from repro.tree.cart import _left_mask

    indices = np.arange(table.n_rows, dtype=np.intp)
    out = np.zeros(table.n_rows, dtype=bool)
    goes_left = _left_mask(node, table.column(node.column or ""), indices)
    out[indices[goes_left]] = True
    return out


def _selection_sql(selection: Predicate | None) -> str:
    return selection.to_sql() if selection is not None else Everything().to_sql()

"""CART decision trees — the cluster-description stage.

Blaeu's final pipeline stage "simplifies the clusters … it uses a
decision tree algorithm, such as CART.  It trains the tree model on the
original tuples from the database, using the cluster IDs obtained
previously as class labels" (§3).  The tree's split predicates become the
human-readable region boundaries on the map ("Hours Worked >= 20").

This package implements classification CART (Breiman et al. 1984) with
Gini impurity, numeric threshold splits and categorical equality splits,
cost-complexity pruning, and rule extraction into the table layer's
predicate algebra.
"""

from repro.tree.cart import CartParams, DecisionTree, TreeNode, fit_tree
from repro.tree.prune import cost_complexity_prune
from repro.tree.rules import describe_leaf, leaf_predicates, tree_rules

__all__ = [
    "CartParams",
    "DecisionTree",
    "TreeNode",
    "cost_complexity_prune",
    "describe_leaf",
    "fit_tree",
    "leaf_predicates",
    "tree_rules",
]

"""Rule extraction: tree paths → predicates → map region boundaries.

This module is the bridge between the description stage and the map
model.  Every leaf of a fitted CART corresponds to a conjunction of split
conditions; rendered through the table layer's predicate algebra those
conjunctions *are* the Select-Project queries the paper says users
implicitly write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.table.predicates import (
    And,
    Comparison,
    Everything,
    Predicate,
)
from repro.tree.cart import DecisionTree, TreeNode

__all__ = ["LeafRule", "leaf_predicates", "tree_rules", "describe_leaf"]


@dataclass(frozen=True)
class LeafRule:
    """One leaf with its path predicate and prediction."""

    predicate: Predicate
    prediction: int
    n_samples: int
    impurity: float

    def to_sql(self) -> str:
        """The leaf's condition as a SQL boolean expression."""
        return self.predicate.to_sql()


def leaf_predicates(tree: DecisionTree) -> list[LeafRule]:
    """All leaves of ``tree`` with their path predicates, left-to-right."""
    rules: list[LeafRule] = []
    _collect(tree.root, [], rules)
    return rules


def tree_rules(tree: DecisionTree) -> dict[int, Predicate]:
    """Class → predicate covering all leaves predicting that class.

    When several leaves predict the same cluster the predicates are OR-ed,
    so each cluster gets exactly one describing condition.
    """
    from repro.table.predicates import Or

    by_class: dict[int, list[Predicate]] = {}
    for rule in leaf_predicates(tree):
        by_class.setdefault(rule.prediction, []).append(rule.predicate)
    return {
        cls: (parts[0] if len(parts) == 1 else Or.of(*parts))
        for cls, parts in sorted(by_class.items())
    }


def describe_leaf(conditions: list[str]) -> str:
    """Join path conditions into one readable phrase."""
    if not conditions:
        return "all rows"
    return " and ".join(conditions)


def _collect(
    node: TreeNode,
    path: list[Predicate],
    out: list[LeafRule],
) -> None:
    if node.is_leaf:
        predicate: Predicate
        if not path:
            predicate = Everything()
        else:
            predicate = And.of(*path)
        out.append(
            LeafRule(
                predicate=predicate,
                prediction=node.prediction,
                n_samples=node.n_samples,
                impurity=node.impurity,
            )
        )
        return
    assert node.left is not None and node.right is not None
    left_condition, right_condition = _branch_predicates(node)
    _collect(node.left, path + [left_condition], out)
    _collect(node.right, path + [right_condition], out)


def _branch_predicates(node: TreeNode) -> tuple[Predicate, Predicate]:
    """The (left, right) conditions of an internal node as predicates.

    The fitted tree routes missing cells along the node's majority branch;
    the predicates encode that routing explicitly with ``… OR x IS NULL``
    so that evaluating a leaf's predicate selects exactly the rows the
    tree sends to that leaf.
    """
    from repro.table.predicates import IsMissing, Or

    column = node.column or ""
    if node.threshold is not None:
        left: Predicate = Comparison(column, "<", node.threshold)
        right: Predicate = Comparison(column, ">=", node.threshold)
    else:
        category = node.category or ""
        left = Comparison(column, "==", category)
        right = Comparison(column, "!=", category)
    if node.missing_goes_left:
        left = Or((left, IsMissing(column)))
    else:
        right = Or((right, IsMissing(column)))
    return left, right

"""Classification CART over table columns (Breiman et al. 1984).

The tree is trained directly on :class:`~repro.table.table.Table` columns
(not on the preprocessed vectors!) because its job is *description*: its
split predicates must read like statements about the user's original
columns.  Numeric columns get threshold splits (``x < t`` / ``x >= t``);
categorical columns get equality splits (``x == label`` / ``x != label``).
Missing values follow the majority branch of their node, recorded at fit
time so prediction is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.table.column import CategoricalColumn, Column, NumericColumn
from repro.table.table import Table

__all__ = ["CartParams", "TreeNode", "DecisionTree", "fit_tree"]


@dataclass(frozen=True)
class CartParams:
    """Growth controls for :func:`fit_tree`.

    The defaults favour *shallow, legible* trees — Blaeu's maps show at
    most a handful of nested regions, so depth is the paper-faithful
    constraint, not accuracy.
    """

    max_depth: int = 4
    min_samples_split: int = 8
    min_samples_leaf: int = 4
    min_impurity_decrease: float = 1e-4
    max_numeric_thresholds: int = 32


@dataclass
class TreeNode:
    """One node of a fitted tree.

    Internal nodes hold a split (``column``, ``threshold`` or ``category``)
    and two children; leaves hold a predicted class.  Every node records
    its class histogram, sample count and Gini impurity for pruning and
    reporting.
    """

    n_samples: int
    class_counts: np.ndarray
    impurity: float
    depth: int
    prediction: int
    column: str | None = None
    threshold: float | None = None
    category: str | None = None
    missing_goes_left: bool = True
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no split."""
        return self.left is None

    def split_description(self) -> str:
        """Human-readable split condition of the *left* branch."""
        if self.is_leaf:
            raise ValueError("leaf nodes have no split")
        if self.threshold is not None:
            return f"{self.column} < {self.threshold:g}"
        return f"{self.column} == {self.category}"

    def walk(self) -> Iterator["TreeNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        if not self.is_leaf:
            assert self.left is not None and self.right is not None
            yield from self.left.walk()
            yield from self.right.walk()


@dataclass
class DecisionTree:
    """A fitted classification tree bound to its feature columns."""

    root: TreeNode
    feature_names: tuple[str, ...]
    n_classes: int
    params: CartParams = field(default_factory=CartParams)

    def predict(self, table: Table) -> np.ndarray:
        """Predicted class per row of ``table``.

        ``table`` must contain every feature column the tree was grown on.
        """
        n = table.n_rows
        out = np.empty(n, dtype=np.intp)
        indices = np.arange(n, dtype=np.intp)
        self._route(self.root, table, indices, out)
        return out

    def _route(
        self,
        node: TreeNode,
        table: Table,
        indices: np.ndarray,
        out: np.ndarray,
    ) -> None:
        if node.is_leaf or indices.size == 0:
            out[indices] = node.prediction
            return
        goes_left = _left_mask(node, table.column(node.column or ""), indices)
        assert node.left is not None and node.right is not None
        self._route(node.left, table, indices[goes_left], out)
        self._route(node.right, table, indices[~goes_left], out)

    def n_leaves(self) -> int:
        """Number of leaves (map regions the tree can describe)."""
        return sum(1 for node in self.root.walk() if node.is_leaf)

    def depth(self) -> int:
        """Maximum node depth (root = 0)."""
        return max(node.depth for node in self.root.walk())

    def accuracy(self, table: Table, labels: np.ndarray) -> float:
        """Fraction of rows the tree classifies as ``labels``.

        This is the paper's "loss of accuracy" metric for the description
        stage: how faithfully the interpretable tree reproduces the
        clustering it summarizes.
        """
        labels = np.asarray(labels)
        if labels.shape != (table.n_rows,):
            raise ValueError("labels must align with table rows")
        if table.n_rows == 0:
            return 1.0
        return float((self.predict(table) == labels).mean())


def fit_tree(
    table: Table,
    labels: np.ndarray,
    feature_names: Sequence[str] | None = None,
    params: CartParams | None = None,
) -> DecisionTree:
    """Grow a CART tree predicting ``labels`` from ``table`` columns.

    Parameters
    ----------
    table:
        Training rows; the original (not preprocessed) columns.
    labels:
        Non-negative integer class per row (Blaeu: cluster IDs).
    feature_names:
        Columns the tree may split on (default: all columns).
    params:
        Growth controls.
    """
    params = params or CartParams()
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] != table.n_rows:
        raise ValueError("labels must be one value per table row")
    if labels.size == 0:
        raise ValueError("cannot fit a tree on an empty table")
    if labels.min() < 0:
        raise ValueError("labels must be non-negative integers")
    names = tuple(feature_names) if feature_names else table.column_names
    for name in names:
        table.column(name)  # raises KeyError early for unknown features
    n_classes = int(labels.max()) + 1

    indices = np.arange(table.n_rows, dtype=np.intp)
    root = _grow(table, labels.astype(np.intp), indices, names, n_classes, 0, params)
    return DecisionTree(
        root=root, feature_names=names, n_classes=n_classes, params=params
    )


# ----------------------------------------------------------------------
# Growth internals
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Split:
    column: str
    gain: float
    threshold: float | None
    category: str | None
    left_indices: np.ndarray
    right_indices: np.ndarray
    missing_goes_left: bool


def _grow(
    table: Table,
    labels: np.ndarray,
    indices: np.ndarray,
    feature_names: tuple[str, ...],
    n_classes: int,
    depth: int,
    params: CartParams,
) -> TreeNode:
    node_labels = labels[indices]
    counts = np.bincount(node_labels, minlength=n_classes)
    node = TreeNode(
        n_samples=int(indices.size),
        class_counts=counts,
        impurity=_gini(counts),
        depth=depth,
        prediction=int(np.argmax(counts)),
    )
    if (
        depth >= params.max_depth
        or indices.size < params.min_samples_split
        or node.impurity == 0.0
    ):
        return node

    split = _best_split(table, labels, indices, feature_names, n_classes, params)
    if split is None:
        return node

    node.column = split.column
    node.threshold = split.threshold
    node.category = split.category
    node.missing_goes_left = split.missing_goes_left
    node.left = _grow(
        table, labels, split.left_indices, feature_names, n_classes,
        depth + 1, params,
    )
    node.right = _grow(
        table, labels, split.right_indices, feature_names, n_classes,
        depth + 1, params,
    )
    return node


def _best_split(
    table: Table,
    labels: np.ndarray,
    indices: np.ndarray,
    feature_names: tuple[str, ...],
    n_classes: int,
    params: CartParams,
) -> _Split | None:
    best: _Split | None = None
    for name in feature_names:
        column = table.column(name)
        if isinstance(column, NumericColumn):
            candidate = _best_numeric_split(
                column, labels, indices, n_classes, params
            )
        elif isinstance(column, CategoricalColumn):
            candidate = _best_categorical_split(
                column, labels, indices, n_classes, params
            )
        else:  # pragma: no cover - only two column kinds exist
            candidate = None
        if candidate is None:
            continue
        if best is None or candidate.gain > best.gain + 1e-15:
            best = candidate
    if best is None or best.gain < params.min_impurity_decrease:
        return None
    return best


def _best_numeric_split(
    column: NumericColumn,
    labels: np.ndarray,
    indices: np.ndarray,
    n_classes: int,
    params: CartParams,
) -> _Split | None:
    values = column.values[indices]
    present = ~np.isnan(values)
    if present.sum() < 2 * params.min_samples_leaf:
        return None
    present_indices = indices[present]
    present_values = values[present]
    missing_indices = indices[~present]

    order = np.argsort(present_values, kind="stable")
    sorted_values = present_values[order]
    sorted_labels = labels[present_indices[order]]

    # Candidate thresholds: midpoints between distinct consecutive values,
    # subsampled to at most max_numeric_thresholds for wide columns.
    distinct_boundaries = np.flatnonzero(np.diff(sorted_values) > 0)
    if distinct_boundaries.size == 0:
        return None
    if distinct_boundaries.size > params.max_numeric_thresholds:
        picks = np.linspace(
            0, distinct_boundaries.size - 1, params.max_numeric_thresholds
        ).astype(np.intp)
        distinct_boundaries = distinct_boundaries[picks]

    # Prefix class counts over the sorted labels for O(1) impurity per cut.
    one_hot = np.zeros((sorted_labels.size, n_classes), dtype=np.int64)
    one_hot[np.arange(sorted_labels.size), sorted_labels] = 1
    prefix = one_hot.cumsum(axis=0)
    total = prefix[-1]
    parent_impurity = _gini(total)
    n_present = sorted_labels.size

    best_gain = -np.inf
    best_boundary = -1
    for boundary in distinct_boundaries:
        n_left = boundary + 1
        n_right = n_present - n_left
        if n_left < params.min_samples_leaf or n_right < params.min_samples_leaf:
            continue
        left_counts = prefix[boundary]
        right_counts = total - left_counts
        weighted = (
            n_left * _gini(left_counts) + n_right * _gini(right_counts)
        ) / n_present
        gain = parent_impurity - weighted
        if gain > best_gain:
            best_gain = gain
            best_boundary = int(boundary)
    if best_boundary < 0 or best_gain <= 0:
        return None

    threshold = float(
        (sorted_values[best_boundary] + sorted_values[best_boundary + 1]) / 2.0
    )
    goes_left = present_values < threshold
    left = present_indices[goes_left]
    right = present_indices[~goes_left]
    missing_goes_left = left.size >= right.size
    if missing_indices.size:
        if missing_goes_left:
            left = np.concatenate([left, missing_indices])
        else:
            right = np.concatenate([right, missing_indices])
    return _Split(
        column=column.name,
        gain=float(best_gain) * present.sum() / indices.size,
        threshold=threshold,
        category=None,
        left_indices=np.sort(left),
        right_indices=np.sort(right),
        missing_goes_left=missing_goes_left,
    )


def _best_categorical_split(
    column: CategoricalColumn,
    labels: np.ndarray,
    indices: np.ndarray,
    n_classes: int,
    params: CartParams,
) -> _Split | None:
    codes = column.codes[indices]
    present = codes != CategoricalColumn.MISSING_CODE
    if present.sum() < 2 * params.min_samples_leaf:
        return None
    present_indices = indices[present]
    present_codes = codes[present]
    missing_indices = indices[~present]

    used_codes = np.unique(present_codes)
    if used_codes.size < 2:
        return None

    node_labels = labels[present_indices]
    total = np.bincount(node_labels, minlength=n_classes)
    parent_impurity = _gini(total)
    n_present = present_codes.size

    best_gain = -np.inf
    best_code = -1
    for code in used_codes:
        in_category = present_codes == code
        n_left = int(in_category.sum())
        n_right = n_present - n_left
        if n_left < params.min_samples_leaf or n_right < params.min_samples_leaf:
            continue
        left_counts = np.bincount(node_labels[in_category], minlength=n_classes)
        right_counts = total - left_counts
        weighted = (
            n_left * _gini(left_counts) + n_right * _gini(right_counts)
        ) / n_present
        gain = parent_impurity - weighted
        if gain > best_gain:
            best_gain = gain
            best_code = int(code)
    if best_code < 0 or best_gain <= 0:
        return None

    goes_left = present_codes == best_code
    left = present_indices[goes_left]
    right = present_indices[~goes_left]
    missing_goes_left = left.size >= right.size
    if missing_indices.size:
        if missing_goes_left:
            left = np.concatenate([left, missing_indices])
        else:
            right = np.concatenate([right, missing_indices])
    return _Split(
        column=column.name,
        gain=float(best_gain) * present.sum() / indices.size,
        threshold=None,
        category=column.categories[best_code],
        left_indices=np.sort(left),
        right_indices=np.sort(right),
        missing_goes_left=missing_goes_left,
    )


def _left_mask(node: TreeNode, column: Column, indices: np.ndarray) -> np.ndarray:
    """Which of ``indices`` follow the left branch of ``node``."""
    if node.threshold is not None:
        if not isinstance(column, NumericColumn):
            raise TypeError(
                f"tree splits {node.column!r} numerically but the column "
                f"is {type(column).__name__}"
            )
        values = column.values[indices]
        with np.errstate(invalid="ignore"):
            goes_left = values < node.threshold
        goes_left[np.isnan(values)] = node.missing_goes_left
        return goes_left
    if not isinstance(column, CategoricalColumn):
        raise TypeError(
            f"tree splits {node.column!r} categorically but the column "
            f"is {type(column).__name__}"
        )
    codes = column.codes[indices]
    try:
        target = column.code_of(node.category or "")
    except KeyError:
        goes_left = np.zeros(indices.size, dtype=bool)
    else:
        goes_left = codes == target
    goes_left[codes == CategoricalColumn.MISSING_CODE] = node.missing_goes_left
    return goes_left


def _gini(counts: np.ndarray) -> float:
    """Gini impurity ``1 − Σ p²`` of a class-count vector."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - (proportions**2).sum())

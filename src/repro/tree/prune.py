"""Cost-complexity (weakest-link) pruning, CART book §3.

Maps must stay legible: a tree that sprouts dozens of leaves to chase a
few misassigned tuples makes a worse map, not a better one.  Weakest-link
pruning trades training error against leaf count with a single complexity
price ``alpha``: collapse every subtree whose error reduction per saved
leaf is below ``alpha``.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.tree.cart import DecisionTree, TreeNode

__all__ = ["cost_complexity_prune", "prune_for_legibility", "pruning_path"]


def cost_complexity_prune(tree: DecisionTree, alpha: float) -> DecisionTree:
    """A pruned copy of ``tree`` under complexity price ``alpha`` ≥ 0.

    Repeatedly collapses the weakest link — the internal node with the
    smallest per-leaf error improvement — while that improvement rate is
    below ``alpha``.  ``alpha = 0`` returns an equivalent copy.
    """
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    pruned = copy.deepcopy(tree)
    while True:
        weakest, rate = _weakest_link(pruned.root)
        if weakest is None or rate > alpha:
            return pruned
        _collapse(weakest)


def pruning_path(tree: DecisionTree) -> list[tuple[float, int]]:
    """The sequence of (alpha, n_leaves) along the full pruning path.

    Useful for picking alpha by inspection: the first entry is
    ``(0.0, n_leaves)`` of the unpruned tree, the last is ``(inf-most
    alpha, 1)`` for the root-only tree.
    """
    work = copy.deepcopy(tree)
    path = [(0.0, work.n_leaves())]
    while True:
        weakest, rate = _weakest_link(work.root)
        if weakest is None:
            return path
        _collapse(weakest)
        path.append((rate, work.n_leaves()))


def prune_for_legibility(
    tree: DecisionTree,
    target_leaves: int,
    min_accuracy: float = 0.9,
) -> DecisionTree:
    """Prune a description tree so the map stays legible.

    Two phases, both collapsing weakest links first and never erasing the
    *last* leaf of any class (every cluster must stay visible on the map):

    1. **hard cap** — while the tree has more than ``target_leaves``
       leaves, collapse regardless of the accuracy cost (legibility wins;
       the paper accepts that "the decision tree only approximates the
       real partitions");
    2. **cleanup** — below the cap, keep collapsing only while training
       accuracy stays at or above ``min_accuracy`` (removes pure-split
       leaves that add regions without adding information).
    """
    if target_leaves < 1:
        raise ValueError(f"target_leaves must be >= 1, got {target_leaves}")
    if not 0.0 <= min_accuracy <= 1.0:
        raise ValueError(f"min_accuracy must be in [0, 1], got {min_accuracy}")
    work = copy.deepcopy(tree)
    total = work.root.n_samples
    if total == 0:
        return work

    # Phase 1: enforce the leaf cap.
    while work.n_leaves() > target_leaves:
        candidate = _collapsible(work.root, require_class_safety=True)
        if candidate is None:
            break
        _collapse(candidate)

    # Phase 2: opportunistic cleanup under the accuracy floor.
    while work.n_leaves() > 2:
        candidate = _collapsible(work.root, require_class_safety=True)
        if candidate is None:
            break
        current_error, _ = _subtree_stats(work.root)
        subtree_error, _ = _subtree_stats(candidate)
        error_after = current_error + (_node_error(candidate) - subtree_error)
        if 1.0 - error_after / total < min_accuracy:
            break
        _collapse(candidate)
    return work


def _collapsible(root: TreeNode, require_class_safety: bool) -> TreeNode | None:
    """The weakest internal node whose collapse keeps every class visible.

    A collapse replaces a subtree by one leaf predicting the subtree's
    majority class; it is *class-safe* when every other class predicted
    by the subtree's leaves still has a leaf elsewhere in the tree.
    """
    leaf_classes: dict[int, int] = {}
    for node in root.walk():
        if node.is_leaf:
            leaf_classes[node.prediction] = (
                leaf_classes.get(node.prediction, 0) + 1
            )

    candidates: list[tuple[float, TreeNode]] = []
    for node in root.walk():
        if node.is_leaf:
            continue
        subtree_error, subtree_leaves = _subtree_stats(node)
        if subtree_leaves <= 1:
            continue
        rate = (_node_error(node) - subtree_error) / (subtree_leaves - 1)
        candidates.append((rate, node))
    candidates.sort(key=lambda pair: pair[0])

    for _, node in candidates:
        if not require_class_safety:
            return node
        majority = int(np.argmax(node.class_counts))
        inside: dict[int, int] = {}
        for leaf in node.walk():
            if leaf.is_leaf:
                inside[leaf.prediction] = inside.get(leaf.prediction, 0) + 1
        safe = all(
            cls == majority or leaf_classes.get(cls, 0) > count
            for cls, count in inside.items()
        )
        if safe:
            return node
    return None


def _node_error(node: TreeNode) -> float:
    """Misclassified sample count when ``node`` predicts its majority class."""
    return float(node.n_samples - node.class_counts.max())


def _subtree_stats(node: TreeNode) -> tuple[float, int]:
    """(training error, leaf count) of the subtree rooted at ``node``."""
    if node.is_leaf:
        return _node_error(node), 1
    assert node.left is not None and node.right is not None
    left_error, left_leaves = _subtree_stats(node.left)
    right_error, right_leaves = _subtree_stats(node.right)
    return left_error + right_error, left_leaves + right_leaves


def _weakest_link(root: TreeNode) -> tuple[TreeNode | None, float]:
    """The internal node with the lowest error-per-leaf improvement rate.

    The rate of node t is ``(R(t) − R(T_t)) / (|T_t| − 1)`` where ``R(t)``
    is the node's own error as a leaf and ``R(T_t)``, ``|T_t|`` are its
    subtree's error and leaf count.
    """
    weakest: TreeNode | None = None
    weakest_rate = np.inf
    for node in root.walk():
        if node.is_leaf:
            continue
        subtree_error, subtree_leaves = _subtree_stats(node)
        if subtree_leaves <= 1:
            continue
        rate = (_node_error(node) - subtree_error) / (subtree_leaves - 1)
        if rate < weakest_rate - 1e-12:
            weakest = node
            weakest_rate = rate
    return weakest, float(weakest_rate)


def _collapse(node: TreeNode) -> None:
    """Turn an internal node into a leaf predicting its majority class."""
    node.left = None
    node.right = None
    node.column = None
    node.threshold = None
    node.category = None
    node.prediction = int(np.argmax(node.class_counts))

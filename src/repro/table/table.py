"""The relational core: an immutable, column-oriented table.

A :class:`Table` is an ordered collection of equally long
:class:`~repro.table.column.Column` objects.  It supports exactly the
operations Blaeu's engine needs from its DBMS:

* ``select`` — keep the rows matching a predicate,
* ``project`` — keep a subset of columns,
* ``sample`` — uniform random subset of rows (MonetDB's ``SAMPLE``),
* ``take`` — positional row selection (the sampling primitives produce
  index arrays).

All operations return new tables; nothing is mutated in place.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.table.column import (
    CategoricalColumn,
    Column,
    ColumnKind,
    NumericColumn,
)
from repro.table.predicates import Predicate

__all__ = ["Table"]


class Table:
    """An immutable column-store table.

    Parameters
    ----------
    name:
        Table name (used in SQL rendering and the catalog).
    columns:
        The columns, all of the same length.  Order is preserved and
        significant (the theme view lists columns in table order).
    """

    __slots__ = ("_name", "_columns", "_order", "_n_rows", "_fingerprint")

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not name:
            raise ValueError("table name must be non-empty")
        if not columns:
            raise ValueError(f"table {name!r} must have at least one column")
        lengths = {len(column) for column in columns}
        if len(lengths) != 1:
            raise ValueError(
                f"columns of table {name!r} have inconsistent lengths: "
                f"{sorted(lengths)}"
            )
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names: {duplicates}")
        self._name = name
        self._columns = {column.name: column for column in columns}
        self._order = tuple(names)
        self._n_rows = lengths.pop()
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        column_names: Sequence[str],
        rows: Iterable[Sequence[object]],
        kinds: Mapping[str, ColumnKind] | None = None,
    ) -> "Table":
        """Build a table from row tuples, inferring column kinds.

        ``kinds`` may force specific columns to a kind; otherwise a column
        becomes numeric when every present cell parses as a number.
        """
        from repro.table.schema import infer_column

        materialized = [tuple(row) for row in rows]
        for row in materialized:
            if len(row) != len(column_names):
                raise ValueError(
                    f"row width {len(row)} != header width {len(column_names)}"
                )
        columns = []
        for position, column_name in enumerate(column_names):
            cells = [row[position] for row in materialized]
            forced = kinds.get(column_name) if kinds else None
            columns.append(infer_column(column_name, cells, forced))
        return cls(name, columns)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The table's name."""
        return self._name

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._order)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in table order."""
        return self._order

    @property
    def columns(self) -> tuple[Column, ...]:
        """Columns in table order."""
        return tuple(self._columns[n] for n in self._order)

    def column(self, name: str) -> Column:
        """The column called ``name``; raises ``KeyError`` when absent."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"table {self._name!r} has no column {name!r}; "
                f"available: {list(self._order)}"
            ) from None

    def has_column(self, name: str) -> bool:
        """Whether a column called ``name`` exists."""
        return name in self._columns

    def fingerprint(self) -> str:
        """A stable content hash over schema and column bytes.

        Two tables with the same columns (names, kinds, order) and the
        same cell values share a fingerprint, regardless of their table
        names — so cached results keyed on the fingerprint survive
        ``rename`` and re-registration.  Computed once, then memoized
        (tables are immutable).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(f"blaeu.table/1:{self._n_rows}".encode())
            for column in self.columns:
                digest.update(b"\x00col\x00")
                digest.update(column.name.encode("utf-8"))
                digest.update(b"\x00")
                digest.update(column.kind.value.encode("ascii"))
                digest.update(b"\x00")
                if isinstance(column, NumericColumn):
                    # Zero out missing cells: NaN payload bytes are not
                    # canonical, the mask is hashed separately below.
                    values = np.where(column.missing_mask, 0.0, column.values)
                    digest.update(np.ascontiguousarray(values).tobytes())
                elif isinstance(column, CategoricalColumn):
                    digest.update(
                        np.ascontiguousarray(column.codes).tobytes()
                    )
                    # Length-prefix each category: joining by a
                    # delimiter alone is ambiguous when a category
                    # itself contains the delimiter byte.
                    digest.update(
                        len(column.categories).to_bytes(4, "big")
                    )
                    for category in column.categories:
                        encoded = category.encode("utf-8")
                        digest.update(len(encoded).to_bytes(4, "big"))
                        digest.update(encoded)
                digest.update(
                    np.ascontiguousarray(column.missing_mask).tobytes()
                )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def numeric_columns(self) -> tuple[NumericColumn, ...]:
        """All numeric columns, in table order."""
        return tuple(
            c for c in self.columns if isinstance(c, NumericColumn)
        )

    def categorical_columns(self) -> tuple[CategoricalColumn, ...]:
        """All categorical columns, in table order."""
        return tuple(
            c for c in self.columns if isinstance(c, CategoricalColumn)
        )

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Table {self._name!r} rows={self._n_rows} "
            f"columns={self.n_columns}>"
        )

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------

    def rename(self, name: str) -> "Table":
        """The same table under a different name."""
        return Table(name, self.columns)

    def select(self, predicate: Predicate, name: str | None = None) -> "Table":
        """Rows matching ``predicate`` (order preserved)."""
        mask = predicate.mask(self)
        return self.filter(mask, name=name)

    def filter(self, mask: np.ndarray, name: str | None = None) -> "Table":
        """Rows where the boolean ``mask`` is ``True``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self._n_rows:
            raise ValueError(
                f"mask length {mask.shape[0]} != table rows {self._n_rows}"
            )
        return self.take(np.flatnonzero(mask), name=name)

    def take(self, indices: np.ndarray, name: str | None = None) -> "Table":
        """Rows at ``indices``, in the given order (may repeat)."""
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and (
            indices.min(initial=0) < 0 or indices.max(initial=0) >= self._n_rows
        ):
            raise IndexError(
                f"row indices out of range for table with {self._n_rows} rows"
            )
        columns = [column.take(indices) for column in self.columns]
        return Table(name or self._name, columns)

    def project(self, names: Sequence[str], name: str | None = None) -> "Table":
        """The columns called ``names``, in the given order."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"unknown columns in projection: {missing}")
        if not names:
            raise ValueError("projection must keep at least one column")
        columns = [self._columns[n] for n in names]
        return Table(name or self._name, columns)

    def drop(self, names: Sequence[str], name: str | None = None) -> "Table":
        """All columns except ``names``."""
        dropped = set(names)
        kept = [n for n in self._order if n not in dropped]
        return self.project(kept, name=name)

    def with_column(self, column: Column) -> "Table":
        """A copy with ``column`` appended (or replaced when the name exists)."""
        if len(column) != self._n_rows:
            raise ValueError(
                f"column length {len(column)} != table rows {self._n_rows}"
            )
        columns = [c for c in self.columns if c.name != column.name]
        columns.append(column)
        return Table(self._name, columns)

    def sample(self, n: int, rng: np.random.Generator | None = None) -> "Table":
        """A uniform sample of ``min(n, n_rows)`` distinct rows.

        This is the stand-in for MonetDB's ``SAMPLE`` clause; row order in
        the output follows the original table (MonetDB semantics).
        """
        from repro.table.sampling import uniform_sample

        rng = rng or np.random.default_rng()
        indices = uniform_sample(self._n_rows, n, rng)
        return self.take(indices)

    def head(self, n: int = 10) -> "Table":
        """The first ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------

    def row(self, index: int) -> dict[str, object]:
        """Row ``index`` as a column-name → value mapping."""
        if not 0 <= index < self._n_rows:
            raise IndexError(f"row {index} out of range [0, {self._n_rows})")
        return {n: self._columns[n].value_at(index) for n in self._order}

    def rows(self) -> Iterator[dict[str, object]]:
        """Iterate over rows as dictionaries (slow path; for tests/export)."""
        for index in range(self._n_rows):
            yield self.row(index)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def describe(self) -> list[dict[str, object]]:
        """One summary record per column (kind, missing count, stats)."""
        out: list[dict[str, object]] = []
        for column in self.columns:
            record: dict[str, object] = {
                "column": column.name,
                "kind": column.kind.value,
                "missing": column.n_missing,
                "distinct": column.n_distinct(),
            }
            if isinstance(column, NumericColumn):
                record.update(
                    min=column.min(),
                    max=column.max(),
                    mean=column.mean(),
                    std=column.std(),
                )
            else:
                counts = column.value_counts()  # type: ignore[union-attr]
                record["top"] = next(iter(counts), None)
            out.append(record)
        return out

"""CSV ingestion and export.

Blaeu's architecture (Figure 4) feeds MonetDB from "external DBs and CSV
files".  This module is the CSV path: it parses with the standard library
``csv`` reader and delegates type decisions to
:func:`repro.table.schema.infer_column`.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping

from repro.table.column import ColumnKind, NumericColumn
from repro.table.schema import infer_column
from repro.table.table import Table

__all__ = ["read_csv", "read_csv_text", "write_csv", "write_csv_text"]


def read_csv(
    path: str | Path,
    name: str | None = None,
    delimiter: str = ",",
    kinds: Mapping[str, ColumnKind] | None = None,
) -> Table:
    """Load a CSV file with a header row into a :class:`Table`.

    Parameters
    ----------
    path:
        File to read.
    name:
        Table name; defaults to the file stem.
    delimiter:
        Field separator.
    kinds:
        Optional per-column kind overrides (skips inference).
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        return _read(handle, name or path.stem, delimiter, kinds)


def read_csv_text(
    text: str,
    name: str = "table",
    delimiter: str = ",",
    kinds: Mapping[str, ColumnKind] | None = None,
) -> Table:
    """Like :func:`read_csv` but from an in-memory string (tests, demos)."""
    return _read(io.StringIO(text), name, delimiter, kinds)


def _read(
    handle,
    name: str,
    delimiter: str,
    kinds: Mapping[str, ColumnKind] | None,
) -> Table:
    reader = csv.reader(handle, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError(f"CSV source for table {name!r} is empty") from None
    header = [column_name.strip() for column_name in header]
    if any(not column_name for column_name in header):
        raise ValueError("CSV header contains empty column names")

    cells: list[list[str | None]] = [[] for _ in header]
    for line_number, row in enumerate(reader, start=2):
        if not row or (len(row) == 1 and not row[0].strip()):
            continue  # skip truly blank lines (an all-missing row is data)
        if len(row) != len(header):
            raise ValueError(
                f"line {line_number}: expected {len(header)} fields, "
                f"got {len(row)}"
            )
        for position, cell in enumerate(row):
            cells[position].append(cell)

    columns = []
    for position, column_name in enumerate(header):
        forced = kinds.get(column_name) if kinds else None
        columns.append(infer_column(column_name, cells[position], forced))
    return Table(name, columns)


def write_csv(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write ``table`` to ``path`` with a header row; missing cells empty."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        _write(table, handle, delimiter)


def write_csv_text(table: Table, delimiter: str = ",") -> str:
    """Render ``table`` as CSV text."""
    buffer = io.StringIO()
    _write(table, buffer, delimiter)
    return buffer.getvalue()


def _write(table: Table, handle, delimiter: str) -> None:
    writer = csv.writer(handle, delimiter=delimiter)
    writer.writerow(table.column_names)
    columns = table.columns
    for index in range(table.n_rows):
        row: list[str] = []
        for column in columns:
            value = column.value_at(index)
            if value is None:
                row.append("")
            elif isinstance(column, NumericColumn):
                row.append(_format_cell(float(value)))
            else:
                row.append(str(value))
        writer.writerow(row)


def _format_cell(value: float) -> str:
    """Format a float without losing round-trip precision."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)

"""CSV ingestion and export.

Blaeu's architecture (Figure 4) feeds MonetDB from "external DBs and CSV
files".  This module is the CSV path: it parses with the standard library
``csv`` reader and delegates type decisions to
:func:`repro.table.schema.infer_column`.

The parse loop is *chunked*: :class:`CsvChunkReader` yields column-major
blocks of at most ``chunk_rows`` records, and is shared between
:func:`read_csv` (which accumulates the chunks into one in-memory
:class:`~repro.table.table.Table`) and the out-of-core ingester
(:func:`repro.store.ingest.ingest_csv`, which spills each chunk to disk
and never holds the whole file).  Sources may be filesystem paths or open
text file-like objects.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import IO, Iterator, Mapping

from repro.table.column import ColumnKind, NumericColumn
from repro.table.schema import infer_column
from repro.table.table import Table

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "CsvChunkReader",
    "read_csv",
    "read_csv_text",
    "write_csv",
    "write_csv_text",
]

#: Records per chunk when a caller asks for chunking without a size
#: (also the store layer's ingestion/scan default — single source).
DEFAULT_CHUNK_ROWS = 65_536


class CsvChunkReader:
    """A one-shot, column-major, chunked CSV record reader.

    Parses the header eagerly (available as :attr:`header`) and then
    yields *chunks*: lists with one entry per column, each entry the list
    of that column's raw string cells for at most ``chunk_rows`` records.
    ``chunk_rows=None`` yields a single chunk holding the whole file.

    Record handling matches the historical ``read_csv`` semantics: truly
    empty lines are skipped, a whitespace-only single-field line is
    skipped only for multi-column headers (for a single-column table it
    is a data row holding one missing cell — dropping it would lose
    rows on a write/read round trip), and ragged records raise with
    their record number.
    """

    def __init__(
        self,
        handle: IO[str],
        delimiter: str = ",",
        chunk_rows: int | None = None,
        name: str = "table",
    ) -> None:
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        self._reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(self._reader)
        except StopIteration:
            raise ValueError(f"CSV source for table {name!r} is empty") from None
        header = [column_name.strip() for column_name in header]
        if any(not column_name for column_name in header):
            raise ValueError("CSV header contains empty column names")
        self.header: tuple[str, ...] = tuple(header)
        self._chunk_rows = chunk_rows

    def __iter__(self) -> Iterator[list[list[str]]]:
        width = len(self.header)
        chunk: list[list[str]] = [[] for _ in range(width)]
        filled = 0
        for record, row in enumerate(self._reader, start=2):
            if not row:
                continue  # a truly blank line (e.g. a trailing newline)
            if len(row) == 1 and not row[0].strip() and width > 1:
                continue  # stray whitespace line in a multi-column file
            if len(row) != width:
                raise ValueError(
                    f"line {record}: expected {width} fields, got {len(row)}"
                )
            for position, cell in enumerate(row):
                chunk[position].append(cell)
            filled += 1
            if self._chunk_rows is not None and filled >= self._chunk_rows:
                yield chunk
                chunk = [[] for _ in range(width)]
                filled = 0
        if filled:
            yield chunk


def read_csv(
    source: str | Path | IO[str],
    name: str | None = None,
    delimiter: str = ",",
    kinds: Mapping[str, ColumnKind] | None = None,
    chunk_rows: int | None = None,
) -> Table:
    """Load CSV with a header row into a :class:`Table`.

    Parameters
    ----------
    source:
        A filesystem path, or an open *text* file-like object (anything
        with ``read``); file-likes are not closed by this function.
    name:
        Table name; defaults to the file stem (``"table"`` for
        file-like sources).
    delimiter:
        Field separator.
    kinds:
        Optional per-column kind overrides (skips inference).
    chunk_rows:
        Parse in blocks of this many records instead of slurping the
        file — the intermediate row buffers stay bounded (the resulting
        table is in-memory either way; for out-of-core loading see
        ``blaeu ingest`` / :func:`repro.store.ingest.ingest_csv`, which
        shares this parse loop).
    """
    if hasattr(source, "read"):
        return _read(source, name or "table", delimiter, kinds, chunk_rows)
    path = Path(source)  # type: ignore[arg-type]
    with path.open(newline="", encoding="utf-8") as handle:
        return _read(handle, name or path.stem, delimiter, kinds, chunk_rows)


def read_csv_text(
    text: str,
    name: str = "table",
    delimiter: str = ",",
    kinds: Mapping[str, ColumnKind] | None = None,
    chunk_rows: int | None = None,
) -> Table:
    """Like :func:`read_csv` but from an in-memory string (tests, demos)."""
    return _read(io.StringIO(text), name, delimiter, kinds, chunk_rows)


def _read(
    handle: IO[str],
    name: str,
    delimiter: str,
    kinds: Mapping[str, ColumnKind] | None,
    chunk_rows: int | None,
) -> Table:
    reader = CsvChunkReader(
        handle, delimiter=delimiter, chunk_rows=chunk_rows, name=name
    )
    cells: list[list[str]] = [[] for _ in reader.header]
    for chunk in reader:
        for position, column_cells in enumerate(chunk):
            cells[position].extend(column_cells)

    columns = []
    for position, column_name in enumerate(reader.header):
        forced = kinds.get(column_name) if kinds else None
        columns.append(infer_column(column_name, cells[position], forced))
    return Table(name, columns)


def write_csv(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write ``table`` to ``path`` with a header row; missing cells empty."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        _write(table, handle, delimiter)


def write_csv_text(table: Table, delimiter: str = ",") -> str:
    """Render ``table`` as CSV text."""
    buffer = io.StringIO()
    _write(table, buffer, delimiter)
    return buffer.getvalue()


def _write(table: Table, handle: IO[str], delimiter: str) -> None:
    writer = csv.writer(handle, delimiter=delimiter)
    # In a single-column table a missing cell would render as a blank
    # *line*, which readers cannot tell from a trailing newline — the row
    # would silently vanish on the way back in.  Quote those rows (and
    # only those) so they survive the round trip.
    quoted_writer = csv.writer(handle, delimiter=delimiter, quoting=csv.QUOTE_ALL)
    writer.writerow(table.column_names)
    columns = table.columns
    for index in range(table.n_rows):
        row: list[str] = []
        for column in columns:
            value = column.value_at(index)
            if value is None:
                row.append("")
            elif isinstance(column, NumericColumn):
                row.append(_format_cell(float(value)))
            else:
                row.append(str(value))
        if len(row) == 1 and row[0] == "":
            quoted_writer.writerow(row)
        else:
            writer.writerow(row)


def _format_cell(value: float) -> str:
    """Format a float without losing round-trip precision."""
    if not math.isfinite(value):
        # repr gives 'inf' / '-inf', which _parse_float reads back
        # exactly (missing cells never reach here: they render as "").
        return repr(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)

"""Sampling primitives, including Blaeu's multi-scale sampler.

"To keep the latency low, our system relies heavily on sampling.  After
each zoom, Blaeu only takes a few thousand samples from the database."
(paper, §3).  Three primitives support this:

* :func:`uniform_sample` — simple random sample without replacement, the
  stand-in for MonetDB's ``SAMPLE`` clause;
* :func:`reservoir_sample` — one-pass sampling for streams of unknown
  length (CSV ingestion of large files);
* :class:`SampleCascade` — *multi-scale* sampling: one random priority per
  row makes the samples of nested selections themselves nested, so a zoom
  refines the previous sample instead of redrawing it from scratch.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "uniform_sample",
    "reservoir_sample",
    "stratified_sample",
    "SampleCascade",
]


def uniform_sample(
    n_rows: int, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices of a simple random sample of ``min(k, n_rows)`` rows.

    The result is sorted so that the sampled table preserves the source
    row order (matching MonetDB's ``SAMPLE`` output order).
    """
    if k < 0:
        raise ValueError(f"sample size must be non-negative, got {k}")
    if n_rows < 0:
        raise ValueError(f"population size must be non-negative, got {n_rows}")
    if k >= n_rows:
        return np.arange(n_rows, dtype=np.intp)
    chosen = rng.choice(n_rows, size=k, replace=False)
    chosen.sort()
    return chosen.astype(np.intp)


def reservoir_sample(
    stream: Iterable[object], k: int, rng: np.random.Generator
) -> list[object]:
    """Algorithm R: a uniform sample of ``k`` items from a one-pass stream.

    Every length-``k`` subset of the stream is equally likely, regardless
    of the (unknown) stream length.
    """
    if k < 0:
        raise ValueError(f"sample size must be non-negative, got {k}")
    reservoir: list[object] = []
    for seen, item in enumerate(stream):
        if seen < k:
            reservoir.append(item)
            continue
        slot = int(rng.integers(0, seen + 1))
        if slot < k:
            reservoir[slot] = item
    return reservoir


def stratified_sample(
    labels: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices of a sample of ``k`` rows balanced across label strata.

    Each distinct label receives ``k / n_strata`` slots (rounded), capped
    at the stratum size; leftover slots are redistributed to the largest
    remaining strata.  Used when highlighting small clusters: a uniform
    sample might miss them entirely.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    n_rows = labels.shape[0]
    if k >= n_rows:
        return np.arange(n_rows, dtype=np.intp)

    strata = [np.flatnonzero(labels == value) for value in np.unique(labels)]
    strata.sort(key=len)
    chosen: list[np.ndarray] = []
    remaining_slots = k
    remaining_strata = len(strata)
    for stratum in strata:
        quota = remaining_slots // remaining_strata
        take = min(quota, stratum.size)
        if take:
            picked = rng.choice(stratum, size=take, replace=False)
            chosen.append(picked)
        remaining_slots -= take
        remaining_strata -= 1
    out = np.concatenate(chosen) if chosen else np.empty(0, dtype=np.intp)
    out.sort()
    return out.astype(np.intp)


class SampleCascade:
    """Multi-scale sampling over nested selections.

    Assigns each of the ``n_rows`` base rows a random priority once.  The
    sample of any selection is its ``k`` lowest-priority rows.  Because
    priorities are fixed, the sample of a sub-selection is exactly the
    surviving part of the parent's sample plus the next-lowest priorities —
    zooming *refines* the sample rather than redrawing it.  This is the
    property the paper's "multi-scale sampling" needs: consecutive maps
    stay visually stable across zooms.

    The same construction is known as bottom-k sampling; it is uniform for
    any fixed selection.
    """

    def __init__(self, n_rows: int, rng: np.random.Generator) -> None:
        if n_rows < 0:
            raise ValueError(f"n_rows must be non-negative, got {n_rows}")
        self._n_rows = n_rows
        self._priority = rng.permutation(n_rows).astype(np.int64)

    @classmethod
    def from_priorities(cls, priorities: np.ndarray) -> "SampleCascade":
        """A cascade over pre-assigned per-row priorities.

        This is how *persisted* multi-scale sampling works: a store-backed
        table (:mod:`repro.store`) carries its priority column on disk, so
        the cascade — and therefore every nested sample — is identical in
        every process that opens the store, with no O(n) permutation draw
        at registration time.  ``priorities`` may be any integer array
        (including a read-only memory map); values must be distinct, or
        ties can inflate a sample past ``k``.
        """
        priorities = np.asarray(priorities, dtype=np.int64)
        if priorities.ndim != 1:
            raise ValueError("priorities must be one-dimensional")
        cascade = cls.__new__(cls)
        cascade._n_rows = int(priorities.shape[0])
        cascade._priority = priorities
        return cascade

    @property
    def n_rows(self) -> int:
        """Size of the base population."""
        return self._n_rows

    def sample(self, k: int, selection: np.ndarray | None = None) -> np.ndarray:
        """Row indices of the ``k`` lowest-priority rows inside ``selection``.

        ``selection`` is either ``None`` (whole population), a boolean mask
        over the base rows, or an array of base-row indices.  The result is
        sorted in base-row order.
        """
        if k < 0:
            raise ValueError(f"sample size must be non-negative, got {k}")
        if k == 0:
            return np.empty(0, dtype=np.intp)
        candidates = self._resolve(selection)
        if k >= candidates.size:
            return np.sort(candidates)
        priorities = self._priority[candidates]
        threshold = np.partition(priorities, k - 1)[k - 1]
        chosen = candidates[priorities <= threshold]
        return np.sort(chosen)

    def is_nested(self, k_small: int, k_large: int, selection=None) -> bool:
        """Whether the ``k_small`` sample is contained in the ``k_large`` one."""
        small = set(self.sample(k_small, selection).tolist())
        large = set(self.sample(k_large, selection).tolist())
        return small.issubset(large)

    def _resolve(self, selection: np.ndarray | None) -> np.ndarray:
        if selection is None:
            return np.arange(self._n_rows, dtype=np.intp)
        selection = np.asarray(selection)
        if selection.dtype == bool:
            if selection.shape[0] != self._n_rows:
                raise ValueError(
                    f"selection mask length {selection.shape[0]} != "
                    f"population {self._n_rows}"
                )
            return np.flatnonzero(selection)
        indices = selection.astype(np.intp)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self._n_rows
        ):
            raise IndexError("selection indices out of range")
        if np.unique(indices).size != indices.size:
            raise ValueError("selection indices must be distinct")
        return indices

"""Column-store substrate: Blaeu's MonetDB stand-in.

The paper stores the user's data in MonetDB and pulls samples from it at
interaction time.  This package provides the equivalent laptop-scale
substrate: typed columns with missing-value masks, an immutable
:class:`~repro.table.table.Table` supporting select / project / sample,
a predicate algebra that renders to SQL, CSV ingestion with schema
inference, multi-scale sampling, and a :class:`~repro.table.database.Database`
catalog that plays the role of the DBMS endpoint.
"""

from repro.table.aggregate import Aggregate, AggregateResult, aggregate
from repro.table.column import (
    CategoricalColumn,
    Column,
    ColumnKind,
    NumericColumn,
)
from repro.table.csv_io import read_csv, write_csv
from repro.table.database import Database, SelectProject
from repro.table.predicates import (
    And,
    Between,
    Comparison,
    Everything,
    In,
    IsMissing,
    Not,
    Or,
    Predicate,
)
from repro.table.sampling import (
    SampleCascade,
    reservoir_sample,
    stratified_sample,
    uniform_sample,
)
from repro.table.schema import Schema, infer_column, infer_schema
from repro.table.table import Table

__all__ = [
    "Aggregate",
    "AggregateResult",
    "And",
    "Between",
    "aggregate",
    "CategoricalColumn",
    "Column",
    "ColumnKind",
    "Comparison",
    "Database",
    "Everything",
    "In",
    "IsMissing",
    "Not",
    "NumericColumn",
    "Or",
    "Predicate",
    "SampleCascade",
    "Schema",
    "SelectProject",
    "Table",
    "infer_column",
    "infer_schema",
    "read_csv",
    "reservoir_sample",
    "stratified_sample",
    "uniform_sample",
    "write_csv",
]

"""Predicate algebra over tables, with SQL rendering.

Blaeu's central expressivity claim (§2) is that navigating a data map
implicitly composes *Select–Project* queries: every map region corresponds
to a conjunction of split predicates such as ``income >= 22 AND
hours < 9.5``.  This module is the algebra those regions are built from.

Every predicate can do two things:

* evaluate itself against a :class:`~repro.table.table.Table` into a boolean
  row mask (:meth:`Predicate.mask`), and
* render itself as a SQL ``WHERE`` fragment (:meth:`Predicate.to_sql`),
  which is how the engine reports the query a user has "written" by
  clicking.

Missing-value semantics follow SQL: a comparison against a missing cell is
not true, so ``Not`` uses set complement over *rows*, not three-valued
logic (the paper's engine works on cluster membership, where every row is
in or out).  ``IsMissing`` exists to query missingness explicitly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.table.column import CategoricalColumn, NumericColumn

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.table.table import Table

__all__ = [
    "Predicate",
    "Everything",
    "Comparison",
    "Between",
    "In",
    "IsMissing",
    "And",
    "Or",
    "Not",
]

_NUMERIC_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}

_SQL_OPS = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "=", "!=": "<>"}


def _quote_identifier(name: str) -> str:
    """Render a column name as a (double-quoted) SQL identifier."""
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _quote_literal(label: str) -> str:
    """Render a category label as a SQL string literal."""
    escaped = label.replace("'", "''")
    return f"'{escaped}'"


class Predicate(ABC):
    """A boolean condition over the rows of a table."""

    @abstractmethod
    def mask(self, table: "Table") -> np.ndarray:
        """Evaluate to a boolean array of length ``table.n_rows``."""

    @abstractmethod
    def to_sql(self) -> str:
        """Render as a SQL boolean expression."""

    @abstractmethod
    def columns(self) -> frozenset[str]:
        """Names of the columns this predicate references."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return And.of(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or.of(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.to_sql()}>"


@dataclass(frozen=True)
class Everything(Predicate):
    """The predicate that matches every row (the root of every map)."""

    def mask(self, table: "Table") -> np.ndarray:
        return np.ones(table.n_rows, dtype=bool)

    def to_sql(self) -> str:
        return "TRUE"

    def columns(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> value``; the predicate a CART split produces.

    Numeric columns accept all six operators; categorical columns accept
    only ``==`` and ``!=`` against a label.
    """

    column: str
    op: str
    value: float | str

    def __post_init__(self) -> None:
        if self.op not in _NUMERIC_OPS:
            raise ValueError(f"unknown operator {self.op!r}")

    def mask(self, table: "Table") -> np.ndarray:
        column = table.column(self.column)
        if isinstance(column, NumericColumn):
            if isinstance(self.value, str):
                raise TypeError(
                    f"numeric column {self.column!r} compared to string "
                    f"{self.value!r}"
                )
            with np.errstate(invalid="ignore"):
                out = _NUMERIC_OPS[self.op](column.values, float(self.value))
            out &= column.present_mask
            return out
        if isinstance(column, CategoricalColumn):
            if self.op not in ("==", "!="):
                raise TypeError(
                    f"operator {self.op!r} is not defined for categorical "
                    f"column {self.column!r}"
                )
            try:
                code = column.code_of(str(self.value))
            except KeyError:
                matches = np.zeros(len(column), dtype=bool)
            else:
                matches = column.codes == code
            if self.op == "!=":
                matches = ~matches & column.present_mask
            return matches
        raise TypeError(f"unsupported column type {type(column).__name__}")

    def to_sql(self) -> str:
        ident = _quote_identifier(self.column)
        if isinstance(self.value, str):
            return f"{ident} {_SQL_OPS[self.op]} {_quote_literal(self.value)}"
        return f"{ident} {_SQL_OPS[self.op]} {_format_number(self.value)}"

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= column < high`` — the half-open interval of a zoomed region."""

    column: str
    low: float
    high: float

    def mask(self, table: "Table") -> np.ndarray:
        column = table.column(self.column)
        if not isinstance(column, NumericColumn):
            raise TypeError(f"Between requires a numeric column, got {self.column!r}")
        with np.errstate(invalid="ignore"):
            out = (column.values >= self.low) & (column.values < self.high)
        out &= column.present_mask
        return out

    def to_sql(self) -> str:
        ident = _quote_identifier(self.column)
        return (
            f"{ident} >= {_format_number(self.low)} "
            f"AND {ident} < {_format_number(self.high)}"
        )

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})


@dataclass(frozen=True)
class In(Predicate):
    """``column IN (labels)`` over a categorical column."""

    column: str
    labels: tuple[str, ...]

    def __init__(self, column: str, labels: Iterable[str]) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "labels", tuple(sorted(set(map(str, labels)))))

    def mask(self, table: "Table") -> np.ndarray:
        column = table.column(self.column)
        if not isinstance(column, CategoricalColumn):
            raise TypeError(f"In requires a categorical column, got {self.column!r}")
        codes = [
            column.code_of(label)
            for label in self.labels
            if label in column.categories
        ]
        if not codes:
            return np.zeros(len(column), dtype=bool)
        return np.isin(column.codes, np.asarray(codes, dtype=np.int32))

    def to_sql(self) -> str:
        rendered = ", ".join(_quote_literal(label) for label in self.labels)
        return f"{_quote_identifier(self.column)} IN ({rendered})"

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})


@dataclass(frozen=True)
class IsMissing(Predicate):
    """``column IS NULL``."""

    column: str

    def mask(self, table: "Table") -> np.ndarray:
        return table.column(self.column).missing_mask.copy()

    def to_sql(self) -> str:
        return f"{_quote_identifier(self.column)} IS NULL"

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})


class _Connective(Predicate):
    """Shared machinery for ``And`` / ``Or``."""

    _sql_word: str = ""

    def __init__(self, operands: Iterable[Predicate]) -> None:
        flattened: list[Predicate] = []
        for operand in operands:
            if type(operand) is type(self):
                flattened.extend(operand.operands)  # type: ignore[attr-defined]
            else:
                flattened.append(operand)
        if not flattened:
            raise ValueError(f"{type(self).__name__} needs at least one operand")
        self._operands = tuple(flattened)

    @property
    def operands(self) -> tuple[Predicate, ...]:
        """The flattened operand list."""
        return self._operands

    @classmethod
    def of(cls, *operands: Predicate) -> Predicate:
        """Smart constructor: drops redundant ``Everything`` terms."""
        kept = [p for p in operands if not isinstance(p, Everything)]
        if not kept:
            return Everything()
        if len(kept) == 1:
            return kept[0]
        return cls(kept)

    def to_sql(self) -> str:
        parts = []
        for operand in self._operands:
            sql = operand.to_sql()
            if isinstance(operand, _Connective):
                sql = f"({sql})"
            parts.append(sql)
        return f" {self._sql_word} ".join(parts)

    def columns(self) -> frozenset[str]:
        return frozenset().union(*(p.columns() for p in self._operands))

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other._operands == self._operands  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._operands))


class And(_Connective):
    """Conjunction; ``And.of`` drops ``Everything`` and flattens nesting."""

    _sql_word = "AND"

    def mask(self, table: "Table") -> np.ndarray:
        out = self._operands[0].mask(table)
        for operand in self._operands[1:]:
            out = out & operand.mask(table)
        return out


class Or(_Connective):
    """Disjunction; ``Or.of`` drops ``Everything``-absorbed forms."""

    _sql_word = "OR"

    @classmethod
    def of(cls, *operands: Predicate) -> Predicate:
        if any(isinstance(p, Everything) for p in operands):
            return Everything()
        if not operands:
            raise ValueError("Or needs at least one operand")
        if len(operands) == 1:
            return operands[0]
        return cls(operands)

    def mask(self, table: "Table") -> np.ndarray:
        out = self._operands[0].mask(table)
        for operand in self._operands[1:]:
            out = out | operand.mask(table)
        return out


@dataclass(frozen=True)
class Not(Predicate):
    """Row-set complement of the wrapped predicate."""

    operand: Predicate

    def mask(self, table: "Table") -> np.ndarray:
        return ~self.operand.mask(table)

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"

    def columns(self) -> frozenset[str]:
        return self.operand.columns()


def _format_number(value: float) -> str:
    """Render a float compactly (integers without a trailing ``.0``)."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:g}"

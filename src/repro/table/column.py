"""Typed columns with explicit missing-value masks.

Blaeu's mapping engine must "cope with mixed data, potentially including
missing values" (paper, §3).  The column model therefore distinguishes two
kinds of columns and carries an explicit null mask rather than relying on
NaN sentinels:

* :class:`NumericColumn` — float64 values (continuous indicators such as
  *Average Income* or *Unemployment*).
* :class:`CategoricalColumn` — integer codes into a category list (labels
  such as *CountryName* or *Genre*).

Columns are immutable value objects: every transformation (``take``,
``filter``) returns a new column sharing no mutable state with its source.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Column", "ColumnKind", "NumericColumn", "CategoricalColumn"]

#: Values treated as missing when parsing raw (string) cells.
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "?", "-"})


class ColumnKind(Enum):
    """The two data kinds Blaeu's preprocessing distinguishes."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


class Column(ABC):
    """Abstract base for a named, typed, nullable column.

    Concrete subclasses store their values in NumPy arrays and expose a
    shared interface used by the table, the preprocessor and the
    statistics layer.
    """

    __slots__ = ("_name", "_missing")

    def __init__(self, name: str, missing: np.ndarray) -> None:
        if not name:
            raise ValueError("column name must be a non-empty string")
        self._name = name
        self._missing = np.asarray(missing, dtype=bool)
        self._missing.setflags(write=False)

    @property
    def name(self) -> str:
        """The column's name, unique within its table."""
        return self._name

    @property
    @abstractmethod
    def kind(self) -> ColumnKind:
        """Whether the column is numeric or categorical."""

    @property
    def missing_mask(self) -> np.ndarray:
        """Boolean array; ``True`` where the value is missing."""
        return self._missing

    @property
    def n_missing(self) -> int:
        """Number of missing cells."""
        return int(self._missing.sum())

    @property
    def present_mask(self) -> np.ndarray:
        """Boolean array; ``True`` where the value is present."""
        return ~self._missing

    def __len__(self) -> int:
        return int(self._missing.shape[0])

    @abstractmethod
    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column containing the rows at ``indices`` (in order)."""

    def filter(self, mask: np.ndarray) -> "Column":
        """Return a new column keeping only rows where ``mask`` is ``True``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != len(self):
            raise ValueError(
                f"mask length {mask.shape[0]} != column length {len(self)}"
            )
        return self.take(np.flatnonzero(mask))

    @abstractmethod
    def rename(self, name: str) -> "Column":
        """Return a copy of this column under a new name."""

    @abstractmethod
    def value_at(self, index: int) -> object:
        """Python-native value at ``index`` (``None`` when missing)."""

    @abstractmethod
    def n_distinct(self) -> int:
        """Number of distinct present values."""

    def is_unique_key(self) -> bool:
        """``True`` when every present value occurs exactly once and none miss.

        Blaeu's preprocessing removes primary keys before clustering; this
        is the detection predicate it uses.
        """
        if len(self) == 0 or self.n_missing:
            return False
        return self.n_distinct() == len(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self._name!r} len={len(self)} "
            f"missing={self.n_missing}>"
        )


class NumericColumn(Column):
    """A column of float64 values with a missing mask.

    Missing cells hold ``nan`` in the backing array, but the mask — not the
    NaN payload — is authoritative: callers must consult
    :attr:`missing_mask` (NaN is also stored so that accidental use of a
    missing cell poisons downstream arithmetic loudly instead of silently).
    """

    __slots__ = ("_values",)

    def __init__(
        self,
        name: str,
        values: Iterable[float],
        missing: np.ndarray | None = None,
    ) -> None:
        array = np.asarray(
            list(values) if not isinstance(values, np.ndarray) else values,
            dtype=np.float64,
        )
        if array.ndim != 1:
            raise ValueError("numeric column values must be one-dimensional")
        if missing is None:
            mask = np.isnan(array)
        else:
            mask = np.asarray(missing, dtype=bool)
            if mask.shape != array.shape:
                raise ValueError("missing mask shape must match values shape")
            array = array.copy()
            array[mask] = np.nan
        array.setflags(write=False)
        super().__init__(name, mask)
        self._values = array

    @classmethod
    def from_cells(
        cls, name: str, cells: Sequence[str | float | None]
    ) -> "NumericColumn":
        """Parse raw cells (strings or numbers); unparseable cells are missing."""
        values = np.empty(len(cells), dtype=np.float64)
        mask = np.zeros(len(cells), dtype=bool)
        for i, cell in enumerate(cells):
            parsed = _parse_float(cell)
            if parsed is None:
                values[i] = np.nan
                mask[i] = True
            else:
                values[i] = parsed
        return cls(name, values, mask)

    @property
    def kind(self) -> ColumnKind:
        return ColumnKind.NUMERIC

    @property
    def values(self) -> np.ndarray:
        """Backing float64 array (missing cells are NaN). Read-only."""
        return self._values

    def present_values(self) -> np.ndarray:
        """The non-missing values, in row order."""
        return self._values[self.present_mask]

    def take(self, indices: np.ndarray) -> "NumericColumn":
        indices = np.asarray(indices, dtype=np.intp)
        return NumericColumn(
            self._name, self._values[indices], self._missing[indices]
        )

    def rename(self, name: str) -> "NumericColumn":
        return NumericColumn(name, self._values, self._missing)

    def value_at(self, index: int) -> float | None:
        if self._missing[index]:
            return None
        return float(self._values[index])

    def n_distinct(self) -> int:
        present = self.present_values()
        if present.size == 0:
            return 0
        return int(np.unique(present).size)

    def min(self) -> float:
        """Smallest present value (``nan`` when the column is all-missing)."""
        present = self.present_values()
        return float(present.min()) if present.size else math.nan

    def max(self) -> float:
        """Largest present value (``nan`` when the column is all-missing)."""
        present = self.present_values()
        return float(present.max()) if present.size else math.nan

    def mean(self) -> float:
        """Mean of present values (``nan`` when the column is all-missing)."""
        present = self.present_values()
        return float(present.mean()) if present.size else math.nan

    def std(self) -> float:
        """Population standard deviation of present values."""
        present = self.present_values()
        return float(present.std()) if present.size else math.nan

    def median(self) -> float:
        """Median of present values (``nan`` when the column is all-missing)."""
        present = self.present_values()
        return float(np.median(present)) if present.size else math.nan


class CategoricalColumn(Column):
    """A column of labels stored as integer codes into a category list.

    The code ``-1`` marks a missing cell.  Categories are stored in first-
    appearance order and are not required to be exhaustive: a filtered
    column keeps its parent's category list so that codes remain comparable
    across selections (important when a decision tree trained on a sample
    is evaluated against the full table).
    """

    __slots__ = ("_codes", "_categories", "_index")

    MISSING_CODE = -1

    def __init__(
        self,
        name: str,
        codes: Iterable[int],
        categories: Sequence[str],
    ) -> None:
        codes_array = np.asarray(
            list(codes) if not isinstance(codes, np.ndarray) else codes,
            dtype=np.int32,
        )
        if codes_array.ndim != 1:
            raise ValueError("categorical codes must be one-dimensional")
        categories = tuple(str(c) for c in categories)
        if len(set(categories)) != len(categories):
            raise ValueError("categories must be distinct")
        if codes_array.size and codes_array.max(initial=-1) >= len(categories):
            raise ValueError("code out of range of the category list")
        if codes_array.size and codes_array.min(initial=0) < -1:
            raise ValueError("negative codes other than -1 are not allowed")
        codes_array.setflags(write=False)
        super().__init__(name, codes_array == self.MISSING_CODE)
        self._codes = codes_array
        self._categories = categories
        self._index = {c: i for i, c in enumerate(categories)}

    @classmethod
    def from_labels(
        cls, name: str, labels: Sequence[str | None]
    ) -> "CategoricalColumn":
        """Build from raw labels; ``None``/missing tokens become missing cells."""
        categories: list[str] = []
        index: dict[str, int] = {}
        codes = np.empty(len(labels), dtype=np.int32)
        for i, label in enumerate(labels):
            if label is None or str(label).strip().lower() in MISSING_TOKENS:
                codes[i] = cls.MISSING_CODE
                continue
            label = str(label)
            code = index.get(label)
            if code is None:
                code = len(categories)
                index[label] = code
                categories.append(label)
            codes[i] = code
        return cls(name, codes, categories)

    @property
    def kind(self) -> ColumnKind:
        return ColumnKind.CATEGORICAL

    @property
    def codes(self) -> np.ndarray:
        """Backing int32 code array (missing cells are ``-1``). Read-only."""
        return self._codes

    @property
    def categories(self) -> tuple[str, ...]:
        """The category list; ``categories[code]`` is the label."""
        return self._categories

    def code_of(self, label: str) -> int:
        """The code for ``label``; raises ``KeyError`` for unknown labels."""
        return self._index[label]

    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        indices = np.asarray(indices, dtype=np.intp)
        return CategoricalColumn(self._name, self._codes[indices], self._categories)

    def rename(self, name: str) -> "CategoricalColumn":
        return CategoricalColumn(name, self._codes, self._categories)

    def value_at(self, index: int) -> str | None:
        code = int(self._codes[index])
        if code == self.MISSING_CODE:
            return None
        return self._categories[code]

    def labels(self) -> list[str | None]:
        """All cells as Python labels (``None`` where missing)."""
        return [self.value_at(i) for i in range(len(self))]

    def n_distinct(self) -> int:
        present = self._codes[self.present_mask]
        if present.size == 0:
            return 0
        return int(np.unique(present).size)

    def value_counts(self) -> dict[str, int]:
        """Present labels mapped to their frequencies, most frequent first."""
        present = self._codes[self.present_mask]
        counts = np.bincount(present, minlength=len(self._categories))
        pairs = [
            (self._categories[code], int(n))
            for code, n in enumerate(counts)
            if n > 0
        ]
        pairs.sort(key=lambda item: (-item[1], item[0]))
        return dict(pairs)

    def compact(self) -> "CategoricalColumn":
        """Drop categories that no longer occur (after filtering)."""
        present = self._codes[self.present_mask]
        used = np.unique(present) if present.size else np.empty(0, dtype=np.int32)
        remap = np.full(len(self._categories), self.MISSING_CODE, dtype=np.int32)
        remap[used] = np.arange(used.size, dtype=np.int32)
        new_codes = np.where(
            self._codes == self.MISSING_CODE, self.MISSING_CODE, remap[self._codes]
        )
        new_categories = [self._categories[code] for code in used]
        return CategoricalColumn(self._name, new_codes, new_categories)


def _parse_float(cell: str | float | None) -> float | None:
    """Parse one raw cell to float; return ``None`` when missing/unparseable."""
    if cell is None:
        return None
    if isinstance(cell, (int, float)):
        value = float(cell)
        return None if math.isnan(value) else value
    text = str(cell).strip()
    if text.lower() in MISSING_TOKENS:
        return None
    try:
        value = float(text)
    except ValueError:
        return None
    return None if math.isnan(value) else value

"""The catalog / query endpoint — MonetDB's role in Figure 4.

A :class:`Database` holds named tables and answers the only query shape
Blaeu's engine issues: *Select–Project with optional sampling*
(:class:`SelectProject`).  It also renders those queries as SQL, which is
what the demo shows users they have implicitly written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.table.csv_io import read_csv
from repro.table.predicates import Everything, Predicate
from repro.table.sampling import SampleCascade
from repro.table.table import Table

if TYPE_CHECKING:  # pragma: no cover - layering guard (store sits above)
    from repro.store.stored import StoredTable

__all__ = ["Database", "SelectProject"]

#: "caller did not pass scan_jobs" — distinct from an explicit ``None``
#: (which forces serial scans regardless of ``BLAEU_SCAN_JOBS``).
_SCAN_JOBS_UNSET: int | None = object()  # type: ignore[assignment]


@dataclass(frozen=True)
class SelectProject:
    """The one query shape the mapping engine issues.

    ``SELECT <columns> FROM <table> WHERE <predicate> [SAMPLE <n>]``.
    """

    table: str
    columns: tuple[str, ...] = ()
    predicate: Predicate = field(default_factory=Everything)
    sample: int | None = None

    def to_sql(self) -> str:
        """Render as SQL (MonetDB dialect: trailing ``SAMPLE n``)."""
        if self.columns:
            select_list = ", ".join(f'"{c}"' for c in self.columns)
        else:
            select_list = "*"
        sql = f'SELECT {select_list} FROM "{self.table}"'
        where = self.predicate.to_sql()
        if where != "TRUE":
            sql += f" WHERE {where}"
        if self.sample is not None:
            sql += f" SAMPLE {self.sample}"
        return sql


class Database:
    """An in-process catalog of tables with sampling-aware querying.

    Each registered table gets its own :class:`SampleCascade` so repeated
    queries over nested selections return nested (stable) samples — the
    behaviour Blaeu's multi-scale sampling provides on top of MonetDB.
    """

    def __init__(self, seed: int = 0) -> None:
        self._tables: dict[str, Table] = {}
        self._cascades: dict[str, SampleCascade] = {}
        self._seed = seed
        self._query_log: list[str] = []

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------

    def register(self, table: "Table | StoredTable") -> None:
        """Add (or replace) a table in the catalog.

        Store-backed tables (anything exposing a ``cascade()`` factory)
        reuse their *persisted* sampling priorities, so their nested
        samples are identical in every process that opens the store;
        in-memory tables draw a fresh priority permutation here.
        """
        self._tables[table.name] = table  # type: ignore[assignment]
        cascade_factory = getattr(table, "cascade", None)
        if callable(cascade_factory):
            self._cascades[table.name] = cascade_factory()
        else:
            rng = np.random.default_rng((self._seed, hash(table.name) & 0xFFFF))
            self._cascades[table.name] = SampleCascade(table.n_rows, rng)

    def load_csv(self, path: str | Path, name: str | None = None) -> Table:
        """Read a CSV file and register it; returns the loaded table."""
        table = read_csv(path, name=name)
        self.register(table)
        return table

    def load_store(
        self,
        path: str | Path,
        name: str | None = None,
        scan_jobs: int | None = _SCAN_JOBS_UNSET,
    ) -> "StoredTable":
        """Open a store directory and register it; returns the table.

        The table's rows stay on disk: queries against it run as chunked
        scans and gathers (see :mod:`repro.store`).  ``scan_jobs`` fans
        those scans over worker processes; unset, the table follows the
        ``BLAEU_SCAN_JOBS`` environment variable.
        """
        from repro.store.stored import StoredTable

        if scan_jobs is _SCAN_JOBS_UNSET:
            table = StoredTable(path, name=name)
        else:
            table = StoredTable(path, name=name, scan_jobs=scan_jobs)
        self.register(table)
        return table

    def drop(self, name: str) -> None:
        """Remove a table from the catalog."""
        self._require(name)
        del self._tables[name]
        del self._cascades[name]

    def table(self, name: str) -> Table:
        """The registered table called ``name``."""
        return self._require(name)

    def table_names(self) -> tuple[str, ...]:
        """Registered table names, in registration order."""
        return tuple(self._tables)

    def catalog(self) -> list[dict[str, object]]:
        """One record per registered table, content fingerprint included.

        The fingerprint identifies the table *content* (schema + column
        bytes), so clients — and the service's shared map cache — can
        tell whether two names refer to the same data.  ``residency``
        says where the rows live: ``"memory"`` for plain tables,
        ``"store"`` for disk-backed ones (whose fingerprint comes from
        the store manifest in O(1), never from a data re-hash).
        """
        return [
            {
                "name": table.name,
                "n_rows": table.n_rows,
                "n_columns": table.n_columns,
                "fingerprint": table.fingerprint(),
                "residency": getattr(table, "residency", "memory"),
                **(
                    {"n_partitions": len(table.partitions)}
                    if hasattr(table, "partitions")
                    else {}
                ),
            }
            for table in self._tables.values()
        ]

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def execute(self, query: SelectProject) -> Table:
        """Run a Select–Project(-Sample) query and log its SQL."""
        table = self._require(query.table)
        self._query_log.append(query.to_sql())

        mask = query.predicate.mask(table)
        indices = np.flatnonzero(mask)
        if query.sample is not None and query.sample < indices.size:
            cascade = self._cascades[query.table]
            indices = cascade.sample(query.sample, indices)
        result = table.take(indices)
        if query.columns:
            result = result.project(list(query.columns))
        return result

    def sample_indices(
        self,
        name: str,
        k: int,
        predicate: Predicate | None = None,
    ) -> np.ndarray:
        """Base-row indices of a stable sample of the selection.

        Unlike :meth:`execute`, the caller gets positions in the *base*
        table, which the engine needs to relate sampled clusters back to
        full-table rows.
        """
        table = self._require(name)
        cascade = self._cascades[name]
        selection = None
        if predicate is not None and not isinstance(predicate, Everything):
            selection = predicate.mask(table)
        return cascade.sample(k, selection)

    @property
    def query_log(self) -> tuple[str, ...]:
        """SQL text of every executed query, oldest first."""
        return tuple(self._query_log)

    def _require(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table {name!r} in catalog; "
                f"available: {list(self._tables)}"
            ) from None

"""Group-by aggregation over tables.

Blaeu's inspectors summarize regions ("average income inside this
cluster", "tuples per country") — the classic aggregate queries a DBMS
would run.  This module supplies that capability for the column store:
group by one categorical column (or by no column: whole-table totals)
and compute count / mean / min / max / sum over numeric columns, with
SQL rendering for the implicit-query display.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.predicates import Everything, Predicate
from repro.table.table import Table

__all__ = ["Aggregate", "AggregateResult", "aggregate"]

_FUNCTIONS = ("count", "mean", "min", "max", "sum")


@dataclass(frozen=True)
class Aggregate:
    """One aggregation request: ``function(column)``.

    ``count`` may omit the column (``COUNT(*)``).
    """

    function: str
    column: str | None = None

    def __post_init__(self) -> None:
        if self.function not in _FUNCTIONS:
            raise ValueError(
                f"unknown aggregate {self.function!r}; known: {_FUNCTIONS}"
            )
        if self.function != "count" and self.column is None:
            raise ValueError(f"{self.function} requires a column")

    @property
    def name(self) -> str:
        """Result-column name (``mean_income``, ``count``)."""
        if self.column is None:
            return self.function
        return f"{self.function}_{self.column}"

    def to_sql(self) -> str:
        """SQL fragment (``AVG("income")``)."""
        sql_name = {"mean": "AVG"}.get(self.function, self.function.upper())
        if self.column is None:
            return f"{sql_name}(*)"
        return f'{sql_name}("{self.column}")'


@dataclass(frozen=True)
class AggregateResult:
    """Aggregation output: one record per group.

    ``groups`` maps the group label (``None`` for the global group or for
    the missing-label group) to a record of aggregate name → value.
    """

    by: str | None
    groups: dict[str | None, dict[str, float]] = field(default_factory=dict)
    sql: str = ""

    def group(self, label: str | None) -> dict[str, float]:
        """The record for one group label."""
        return self.groups[label]

    def labels(self) -> list[str | None]:
        """Group labels, largest count first (``None`` groups last)."""
        def sort_key(label):
            record = self.groups[label]
            return (-record.get("count", 0.0), label is None, str(label))

        return sorted(self.groups, key=sort_key)


def aggregate(
    table: Table,
    aggregates: Sequence[Aggregate],
    by: str | None = None,
    where: Predicate | None = None,
) -> AggregateResult:
    """Run ``SELECT <aggs> FROM table [WHERE …] [GROUP BY by]``.

    Parameters
    ----------
    table:
        Source rows.
    aggregates:
        The aggregate list; must be non-empty.
    by:
        Optional categorical column to group on; missing labels form
        their own ``None`` group.
    where:
        Optional row filter applied first.
    """
    if not aggregates:
        raise ValueError("at least one aggregate is required")
    where = where or Everything()
    rows = table.select(where)

    if by is None:
        group_rows: dict[str | None, np.ndarray] = {
            None: np.arange(rows.n_rows, dtype=np.intp)
        }
    else:
        column = rows.column(by)
        if not isinstance(column, CategoricalColumn):
            raise TypeError(f"GROUP BY column {by!r} must be categorical")
        group_rows = {}
        for code, label in enumerate(column.categories):
            members = np.flatnonzero(column.codes == code)
            if members.size:
                group_rows[label] = members
        missing = np.flatnonzero(column.missing_mask)
        if missing.size:
            group_rows[None] = missing

    groups: dict[str | None, dict[str, float]] = {}
    for label, members in group_rows.items():
        record: dict[str, float] = {}
        for request in aggregates:
            record[request.name] = _evaluate(rows, request, members)
        groups[label] = record

    sql = _render_sql(table.name, aggregates, by, where)
    return AggregateResult(by=by, groups=groups, sql=sql)


def _evaluate(table: Table, request: Aggregate, members: np.ndarray) -> float:
    if request.function == "count" and request.column is None:
        return float(members.size)
    column = table.column(request.column or "")
    if request.function == "count":
        return float(column.present_mask[members].sum())
    if not isinstance(column, NumericColumn):
        raise TypeError(
            f"{request.function} requires a numeric column, got "
            f"{request.column!r}"
        )
    values = column.values[members]
    values = values[~np.isnan(values)]
    if values.size == 0:
        return float("nan")
    if request.function == "mean":
        return float(values.mean())
    if request.function == "min":
        return float(values.min())
    if request.function == "max":
        return float(values.max())
    return float(values.sum())


def _render_sql(
    table_name: str,
    aggregates: Sequence[Aggregate],
    by: str | None,
    where: Predicate,
) -> str:
    select_parts = [a.to_sql() for a in aggregates]
    if by is not None:
        select_parts.insert(0, f'"{by}"')
    sql = f'SELECT {", ".join(select_parts)} FROM "{table_name}"'
    condition = where.to_sql()
    if condition != "TRUE":
        sql += f" WHERE {condition}"
    if by is not None:
        sql += f' GROUP BY "{by}"'
    return sql

"""Schema inference and key detection.

The paper's engine ingests "external DBs and CSV files" (Figure 4) and its
preprocessing step "removes the primary keys" (§3).  This module supplies
both pieces: given raw (string) cells it decides whether a column is
numeric or categorical, and given a table it detects which columns behave
like keys and should be excluded from clustering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.table.column import (
    CategoricalColumn,
    Column,
    ColumnKind,
    MISSING_TOKENS,
    NumericColumn,
    _parse_float,
)
from repro.table.table import Table

__all__ = ["Schema", "infer_column", "infer_schema", "detect_keys"]

#: Numeric-looking columns whose present values all fall in this set are
#: kept categorical (0/1 flags read from CSV are flags, not measurements).
FLAG_VALUES = frozenset({0.0, 1.0})

#: Common name fragments that mark identifier columns.
KEY_NAME_HINTS = ("id", "key", "uuid", "code")


@dataclass(frozen=True)
class Schema:
    """Column kinds plus detected key columns for one table."""

    kinds: dict[str, ColumnKind]
    keys: tuple[str, ...] = field(default=())

    @property
    def numeric(self) -> tuple[str, ...]:
        """Names of numeric columns, in schema order."""
        return tuple(
            n for n, k in self.kinds.items() if k is ColumnKind.NUMERIC
        )

    @property
    def categorical(self) -> tuple[str, ...]:
        """Names of categorical columns, in schema order."""
        return tuple(
            n for n, k in self.kinds.items() if k is ColumnKind.CATEGORICAL
        )

    @property
    def non_key_columns(self) -> tuple[str, ...]:
        """All columns except the detected keys."""
        keys = set(self.keys)
        return tuple(n for n in self.kinds if n not in keys)


def infer_column(
    name: str,
    cells: Sequence[object],
    forced: ColumnKind | None = None,
) -> Column:
    """Build a typed column from raw cells.

    A column becomes numeric when every *present* cell parses as a float
    and the column is not a disguised flag (see
    :data:`LOW_CARDINALITY_NUMERIC`).  ``forced`` overrides inference.
    """
    if forced is ColumnKind.NUMERIC:
        return NumericColumn.from_cells(name, cells)  # type: ignore[arg-type]
    if forced is ColumnKind.CATEGORICAL:
        return CategoricalColumn.from_labels(
            name, [None if c is None else str(c) for c in cells]
        )

    parsed: list[float | None] = []
    any_present = False
    all_numeric = True
    for cell in cells:
        if cell is None or str(cell).strip().lower() in MISSING_TOKENS:
            parsed.append(None)
            continue
        any_present = True
        value = _parse_float(cell)
        if value is None:
            all_numeric = False
            break
        parsed.append(value)

    if all_numeric and any_present:
        present = {v for v in parsed if v is not None}
        if not present <= FLAG_VALUES:
            return NumericColumn.from_cells(name, cells)  # type: ignore[arg-type]
    return CategoricalColumn.from_labels(
        name, [None if c is None else str(c) for c in cells]
    )


def infer_schema(table: Table) -> Schema:
    """The schema of an existing table, including detected keys."""
    kinds = {column.name: column.kind for column in table.columns}
    return Schema(kinds=kinds, keys=detect_keys(table))


def detect_keys(table: Table) -> tuple[str, ...]:
    """Columns that behave like primary keys.

    A column is flagged when it is all-distinct with no missing values,
    or when its name carries an identifier hint *and* it is almost
    distinct (>95% unique) — catching keys with a few duplicates from
    denormalized exports.

    Continuous measurements are all-distinct *by nature*, so numeric
    columns only qualify when every present value is integral (sequential
    row ids, account numbers) — an income column is never a key.
    """
    keys: list[str] = []
    for column in table.columns:
        if len(column) == 0:
            continue
        if isinstance(column, NumericColumn) and not _is_integral(column):
            continue
        if column.is_unique_key():
            keys.append(column.name)
            continue
        lowered = column.name.lower()
        hinted = any(
            lowered == hint or lowered.endswith("_" + hint) or lowered.endswith(hint)
            for hint in KEY_NAME_HINTS
        )
        if hinted and column.n_distinct() > 0.95 * len(column):
            keys.append(column.name)
    return tuple(keys)


def _is_integral(column: NumericColumn) -> bool:
    """Whether every present value is a whole number."""
    present = column.present_values()
    if present.size == 0:
        return False
    return bool((present == present.astype(np.int64)).all())

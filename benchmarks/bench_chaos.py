"""Chaos benchmark — availability and determinism under injected faults.

Boots the ``--workers 2`` supervisor fleet twice over the same tables:
once clean, once with a deterministic fault cocktail (``--faults``):

* L2 artifact reads fail ~10% of the time and stall another ~5%
  (the disk circuit breaker's diet),
* L2 artifact writes tear ~5% of the time (checksum quarantine path),
* each worker process ``os._exit``\\ s mid-request once, after its 15th
  request (the proxy's retry/failover + respawn path).

The same recorded GET trace (every ``(table, k)`` map, several rounds,
concurrent clients, each request carrying an ``X-Blaeu-Deadline``
budget) replays against both fleets.  Recorded and asserted:

* ``chaos_error_rate`` — failed requests under faults; must stay
  under 1% (the proxy retries idempotent GETs against the respawned
  worker or the ring's next slot, so injected kills are absorbed),
* deadline compliance — every response lands within its budget,
* bit-identity — every map's *structure* (regions, predicates, k,
  exemplars) under faults must equal the fault-free run's at the same
  seed; only count freshness may differ (refinement/degradation
  timing), which is exactly the degraded-mode contract,
* the resilience counters (proxy retries, injected faults) must be
  visible in the chaos fleet's ``/metrics``.

Run directly (``--smoke`` shrinks the workload for CI)::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
SRC = Path(__file__).resolve().parents[1] / "src"
ENV = {**os.environ, "PYTHONPATH": str(SRC)}

#: The injected-fault cocktail (see module docstring).  Deterministic:
#: every firing decision is a hash of (seed, site, spec, hit index).
FAULTS = json.dumps(
    {
        "seed": 2016,
        "faults": [
            {"site": "store.artifact.read", "mode": "error", "rate": 0.10},
            {
                "site": "store.artifact.read",
                "mode": "latency",
                "rate": 0.05,
                "seconds": 0.02,
            },
            {"site": "store.artifact.write", "mode": "torn", "rate": 0.05},
            {
                "site": "worker.request",
                "mode": "kill",
                "after": 15,
                "count": 1,
            },
        ],
    }
)

#: Per-request budget (seconds) carried as ``X-Blaeu-Deadline``.
DEADLINE_SECONDS = 60.0

#: Map-payload keys that legitimately differ across runs: counts are
#: refined (approximate -> exact) in the background and may be served
#: degraded under load, so only the map *structure* is gated.
COUNT_KEYS = frozenset({"n_rows", "n_rows_error", "counts_status"})


def _write_tables(directory: Path, n_tables: int, n_rows: int) -> list[str]:
    """Clusterable CSVs with distinct content (→ distinct fingerprints)."""
    import numpy as np

    directory.mkdir(parents=True, exist_ok=True)
    names = []
    for index in range(n_tables):
        rng = np.random.default_rng(700 + index)
        labels = rng.integers(0, 3, size=n_rows)
        columns = {
            "x": labels * 5.0 + rng.normal(0.0, 0.6, n_rows),
            "y": labels * -4.0 + rng.normal(0.0, 0.6, n_rows),
            "z": rng.normal(0.0, 1.0, n_rows),
        }
        path = directory / f"t{index}.csv"
        with path.open("w", encoding="utf-8") as handle:
            handle.write("x,y,z\n")
            for row in zip(*(v.tolist() for v in columns.values())):
                handle.write(",".join(repr(v) for v in row) + "\n")
        names.append(f"t{index}")
    return names


def _structure(payload: object) -> object:
    """A map payload with every count-freshness key stripped, recursively."""
    if isinstance(payload, dict):
        return {
            key: _structure(value)
            for key, value in payload.items()
            if key not in COUNT_KEYS
        }
    if isinstance(payload, list):
        return [_structure(item) for item in payload]
    return payload


class Serve:
    """One ``python -m repro serve`` process (worker fleet or single)."""

    def __init__(self, argv: list[str]) -> None:
        self._process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", *argv],
            env=ENV,
            stdout=subprocess.PIPE,
            # stderr inherits: quiet in normal runs, and the proxy's
            # BLAEU_PROXY_DEBUG attempt trails stay visible when set.
            stderr=None,
            text=True,
        )
        assert self._process.stdout is not None
        banner = self._process.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        if not match:
            self._process.kill()
            raise RuntimeError(f"unexpected serve banner: {banner!r}")
        self.port = int(match.group(1))
        self._await_healthy()

    def _await_healthy(self, timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{self.port}/healthz", timeout=5
                ) as response:
                    if json.loads(response.read())["ok"]:
                        return
            except OSError:
                time.sleep(0.1)
        raise RuntimeError("serve never became healthy")

    def get(
        self,
        path: str,
        timeout: float = 300.0,
        headers: dict[str, str] | None = None,
        raw: bool = False,
    ):
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}", headers=headers or {}
        )
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
        return body.decode("utf-8") if raw else json.loads(body)

    def close(self) -> None:
        self._process.terminate()
        try:
            self._process.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover
            self._process.kill()
            self._process.wait(timeout=15)


def _replay(
    server: Serve,
    tables: list[str],
    k_values: tuple[int, ...],
    rounds: int,
    n_clients: int,
) -> dict[str, object]:
    """Replay the recorded GET trace concurrently; measure everything."""
    jobs = [
        (round_index, table, k)
        for round_index in range(rounds)
        for table in tables
        for k in k_values
    ]
    headers = {"X-Blaeu-Deadline": str(DEADLINE_SECONDS)}
    lock = threading.Lock()
    queue = list(reversed(jobs))
    latencies: list[float] = []
    failures: list[str] = []
    degraded = 0
    structures: dict[str, object] = {}

    def worker() -> None:
        nonlocal degraded
        while True:
            with lock:
                if not queue:
                    return
                round_index, table, k = queue.pop()
            started = time.perf_counter()
            try:
                payload = server.get(
                    f"/v1/tables/{table}/map?k={k}", headers=headers
                )
                elapsed = time.perf_counter() - started
                assert payload["ok"], payload
                with lock:
                    latencies.append(elapsed)
                    if payload.get("degraded"):
                        degraded += 1
                    # First-round (cold) responses are the identity
                    # witnesses — both fleets build them from scratch.
                    if round_index == 0:
                        structures[f"{table}:k{k}"] = _structure(
                            payload["map"]
                        )
            except Exception as error:  # noqa: BLE001 - tallied below
                detail = repr(error)
                if isinstance(error, urllib.error.HTTPError):
                    with lock:  # .read() is single-shot; keep it ordered
                        detail += " " + error.read().decode(
                            "utf-8", "replace"
                        )
                with lock:
                    latencies.append(time.perf_counter() - started)
                    failures.append(
                        f"r{round_index} {table} k={k}: {detail}"
                    )

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(min(n_clients, len(jobs)))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.perf_counter() - started
    ordered = sorted(latencies)
    violations = sum(1 for lat in latencies if lat > DEADLINE_SECONDS)
    return {
        "n_requests": len(jobs),
        "n_failures": len(failures),
        "failures": failures[:5],
        "error_rate": len(failures) / len(jobs),
        "degraded": degraded,
        "deadline_violations": violations,
        "wall_seconds": elapsed,
        "p50_seconds": ordered[len(ordered) // 2] if ordered else 0.0,
        "p99_seconds": ordered[int(len(ordered) * 0.99)] if ordered else 0.0,
        "structures": structures,
    }


def _metric_total(metrics_text: str, name: str) -> float:
    """Sum every sample of ``name`` (labeled or not) in exposition text."""
    total = 0.0
    for line in metrics_text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            with_label = re.match(rf"{re.escape(name)}(?:\{{[^}}]*\}})? (\S+)", line)
            if with_label:
                total += float(with_label.group(1))
    return total


def run_benchmark(smoke: bool) -> dict[str, object]:
    n_tables = 3 if smoke else 4
    n_rows = 1_200 if smoke else 2_500
    k_values = (2, 3)
    rounds = 8 if smoke else 12
    n_clients = 4

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        tables = _write_tables(directory / "data", n_tables, n_rows)
        csvs = [str(directory / "data" / f"{name}.csv") for name in tables]
        common = [
            "--port",
            "0",
            "--workers",
            "2",
            "--threads",
            "2",
            "--cache-size",
            "64",
        ]

        # Clean reference fleet: same topology, no faults.
        clean = Serve(
            [*common, "--cache-dir", str(directory / "cache-clean"), *csvs]
        )
        try:
            clean_run = _replay(clean, tables, k_values, rounds, n_clients)
        finally:
            clean.close()

        # Chaos fleet: identical trace under the injected-fault cocktail.
        chaos = Serve(
            [
                *common,
                "--cache-dir",
                str(directory / "cache-chaos"),
                "--faults",
                FAULTS,
                *csvs,
            ]
        )
        try:
            chaos_run = _replay(chaos, tables, k_values, rounds, n_clients)
            metrics_text = chaos.get("/metrics", raw=True)
        finally:
            chaos.close()

    assert not clean_run["n_failures"], (
        f"fault-free run failed requests: {clean_run['failures']}"
    )

    differing = [
        key
        for key in clean_run["structures"]
        if chaos_run["structures"].get(key) != clean_run["structures"][key]
    ]
    if differing:
        raise AssertionError(
            f"map structure diverged under faults at the same seed: "
            f"{differing[:5]} — injected faults must never change results"
        )

    retries = _metric_total(
        metrics_text, "blaeu_resilience_proxy_retries_total"
    )
    injected = _metric_total(metrics_text, "blaeu_faults_injected_total")
    error_rate = float(chaos_run["error_rate"])
    assert error_rate < 0.01, (
        f"chaos error rate {error_rate:.2%} breaches the 1% budget: "
        f"{chaos_run['failures']}"
    )
    assert chaos_run["deadline_violations"] == 0, (
        f"{chaos_run['deadline_violations']} responses blew their "
        f"{DEADLINE_SECONDS:.0f}s deadline under faults"
    )
    assert injected > 0, (
        "the chaos run injected no faults — the harness is not wired in"
    )
    return {
        "benchmark": "chaos",
        "smoke": smoke,
        "n_tables": n_tables,
        "n_rows": n_rows,
        "rounds": rounds,
        "n_requests": chaos_run["n_requests"],
        "deadline_seconds": DEADLINE_SECONDS,
        "clean_wall_seconds": round(float(clean_run["wall_seconds"]), 4),
        "chaos_wall_seconds": round(float(chaos_run["wall_seconds"]), 4),
        "clean_p99_seconds": round(float(clean_run["p99_seconds"]), 4),
        "chaos_p99_seconds": round(float(chaos_run["p99_seconds"]), 4),
        "chaos_error_rate": round(float(chaos_run["error_rate"]), 5),
        "chaos_failures": chaos_run["failures"],
        "chaos_degraded": chaos_run["degraded"],
        "chaos_deadline_violations": chaos_run["deadline_violations"],
        "proxy_retries": retries,
        "faults_injected": injected,
        "availability": round(1.0 - float(chaos_run["error_rate"]), 5),
        "maps_identical": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload with relaxed thresholds (CI)",
    )
    args = parser.parse_args()

    record = run_benchmark(smoke=args.smoke)
    print("BENCH " + json.dumps(record, sort_keys=True))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "bench_chaos.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    print(
        f"OK: {record['n_requests']} requests under faults — "
        f"{record['availability']:.2%} available, "
        f"{record['faults_injected']:.0f} faults injected, "
        f"{record['proxy_retries']:.0f} proxy retries, "
        f"p99 {record['chaos_p99_seconds']}s; map structures bit-identical "
        f"to the fault-free fleet"
    )


if __name__ == "__main__":
    main()

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or claim of the paper (see the
experiment index in DESIGN.md).  Besides the pytest-benchmark timing
table, each experiment writes its paper-style rows to
``benchmarks/results/<experiment>.txt`` so the numbers survive pytest's
output capture; EXPERIMENTS.md is compiled from those files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Write an experiment's output rows to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(experiment: str, lines: list[str]) -> None:
        path = RESULTS_DIR / f"{experiment}.txt"
        text = "\n".join(lines) + "\n"
        path.write_text(text, encoding="utf-8")

    return _write

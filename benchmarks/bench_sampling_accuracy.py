"""§3 claim — "the loss of accuracy [from sampling] is minimal".

Blaeu clusters a few-thousand-tuple sample instead of the full selection.
This bench quantifies what that costs: for growing sample sizes, build a
map of the LOFAR-scale catalog from the sample, label *every* tuple with
its map region, and compare against the reference map built from a
20,000-tuple budget (ARI).  The paper's claim corresponds to high ARI at
"a few thousand samples"; the shape to reproduce is a rising curve that
saturates early.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.validation import adjusted_rand_index
from repro.core.config import BlaeuConfig
from repro.core.mapping import build_map
from repro.datasets.lofar import lofar

COLUMNS = ("Flux150MHz", "SpectralIndex", "AngularSize", "Variability")
SAMPLE_SIZES = (250, 500, 1000, 2000, 4000)
N_ROWS = 20_000


@pytest.fixture(scope="module")
def table():
    return lofar(n_rows=N_ROWS)


def _map_labels(table, sample_size: int, seed: int) -> np.ndarray:
    config = BlaeuConfig(map_sample_size=sample_size, map_k_values=(2, 3, 4))
    data_map = build_map(
        table, COLUMNS, config=config, rng=np.random.default_rng(seed), k=4
    )
    labels = np.full(table.n_rows, -1)
    for position, leaf in enumerate(data_map.leaves()):
        labels[leaf.predicate.mask(table)] = position
    return labels


@pytest.fixture(scope="module")
def reference(table):
    return _map_labels(table, N_ROWS, seed=999)


@pytest.mark.parametrize("sample_size", SAMPLE_SIZES)
def test_sampled_map_agreement(benchmark, table, reference, sample_size):
    labels = benchmark.pedantic(
        lambda: _map_labels(table, sample_size, seed=sample_size),
        rounds=2,
        iterations=1,
    )
    ari = adjusted_rand_index(labels, reference)
    # The shape: even modest samples track the reference map; at the
    # paper's operating point ("a few thousand") agreement is high.
    if sample_size >= 2000:
        assert ari > 0.6, f"ARI {ari:.3f} at sample {sample_size}"


def test_sampling_accuracy_curve(benchmark, table, reference, report):
    def curve():
        return {
            size: adjusted_rand_index(
                _map_labels(table, size, seed=size), reference
            )
            for size in SAMPLE_SIZES
        }

    results = benchmark.pedantic(curve, rounds=1, iterations=1)
    rows = [
        "§3 sampling claim — map agreement vs sample size "
        f"(reference: {N_ROWS}-tuple budget, k=4, ARI)",
        "paper: 'the loss of accuracy is minimal' at a few thousand samples",
    ]
    rows += [
        f"  sample {size:>5}: ARI {results[size]:.3f}"
        for size in SAMPLE_SIZES
    ]
    report("sampling_accuracy", rows)
    # The claim is "loss of accuracy is minimal", not monotonicity —
    # CLARA draws add noise between sample sizes.  Every operating point
    # must track the reference map closely, the paper's few-thousand
    # range especially.
    assert all(ari > 0.6 for ari in results.values())
    assert (results[1000] + results[2000]) / 2 > 0.75

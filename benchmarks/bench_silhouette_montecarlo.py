"""§3 claim — Monte-Carlo silhouette: "it extracts a few sub-samples …
computes the clustering quality of those, and averages the results".

Two questions: how close is the Monte-Carlo estimate to the exact mean
silhouette, and how much cheaper is it?  The exact statistic is O(n²);
the estimator is O(subsamples · size²) regardless of n.  Sweep the
subsample budget on an 8,000-point workload and report |error| and
speedup.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster.clara import clara
from repro.cluster.distance import pairwise_distances
from repro.cluster.silhouette import mean_silhouette, monte_carlo_silhouette
from repro.datasets.synthetic import numeric_blobs

N = 8_000
BUDGETS = ((4, 100), (8, 200), (16, 200), (8, 400))


@pytest.fixture(scope="module")
def workload():
    blobs = numeric_blobs(n_rows=N, k=3, n_features=5, spread=0.9, seed=77)
    matrix = np.column_stack(
        [c.values for c in blobs.table.numeric_columns()]
    )
    labels = clara(matrix, 3, rng=np.random.default_rng(0)).labels
    return matrix, labels


@pytest.fixture(scope="module")
def exact_value(workload):
    matrix, labels = workload
    return mean_silhouette(pairwise_distances(matrix), labels)


@pytest.mark.parametrize("budget", BUDGETS, ids=lambda b: f"{b[0]}x{b[1]}")
def test_monte_carlo_estimate(benchmark, workload, exact_value, budget):
    matrix, labels = workload
    n_subsamples, subsample_size = budget
    estimate = benchmark(
        lambda: monte_carlo_silhouette(
            matrix,
            labels,
            n_subsamples=n_subsamples,
            subsample_size=subsample_size,
            rng=np.random.default_rng(1),
        )
    )
    assert abs(estimate - exact_value) < 0.08


def test_exact_silhouette_cost(benchmark, workload):
    matrix, labels = workload
    value = benchmark.pedantic(
        lambda: mean_silhouette(pairwise_distances(matrix), labels),
        rounds=2,
        iterations=1,
    )
    assert -1 <= value <= 1


def test_monte_carlo_convergence_table(workload, exact_value, benchmark, report):
    matrix, labels = workload

    def sweep():
        started = time.perf_counter()
        mean_silhouette(pairwise_distances(matrix), labels)
        exact_time = time.perf_counter() - started
        rows = []
        for n_subsamples, subsample_size in BUDGETS:
            started = time.perf_counter()
            estimate = monte_carlo_silhouette(
                matrix, labels,
                n_subsamples=n_subsamples,
                subsample_size=subsample_size,
                rng=np.random.default_rng(1),
            )
            elapsed = time.perf_counter() - started
            rows.append(
                (n_subsamples, subsample_size, estimate, elapsed, exact_time)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exact_time = rows[0][4]
    lines = [
        f"§3 silhouette claim — Monte-Carlo vs exact on {N} points",
        f"exact mean silhouette: {exact_value:.4f} ({exact_time:.2f}s)",
        f"{'subsamples':>10} {'size':>6} {'estimate':>9} {'|err|':>7} "
        f"{'time s':>8} {'speedup':>8}",
    ]
    for n_subsamples, size, estimate, elapsed, _ in rows:
        lines.append(
            f"{n_subsamples:>10} {size:>6} {estimate:>9.4f} "
            f"{abs(estimate - exact_value):>7.4f} {elapsed:>8.3f} "
            f"{exact_time / elapsed:>7.1f}x"
        )
    report("silhouette_montecarlo", lines)

    # Shape: every budget is at least 5x faster than exact and within 0.08.
    for n_subsamples, size, estimate, elapsed, _ in rows:
        assert exact_time / elapsed > 5
        assert abs(estimate - exact_value) < 0.08

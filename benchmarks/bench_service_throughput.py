"""Serving-layer benchmark — cold vs warm cache, concurrent throughput.

Acceptance criteria from the service PR:

* warm-cache map requests are >= 10x faster than cold ones (the shared
  LRU cache turns a CLARA/PAM + CART run into a lookup), and
* the service handles >= 32 concurrent clients without event-loop
  stalls — measured by probing ``/healthz`` *while* the clients hammer
  map endpoints and checking the probe latency stays interactive.

Run it directly (``--smoke`` shrinks the workload for CI)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py

Results go to stdout as one ``BENCH {json}`` line — the repo's standard
machine-readable benchmark record — and to
``benchmarks/results/bench_service_throughput.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import statistics
import threading
import time
from pathlib import Path

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.service.app import BlaeuService, ServiceConfig

RESULTS_DIR = Path(__file__).parent / "results"


class ServiceThread:
    """Runs a :class:`BlaeuService` event loop on a background thread."""

    def __init__(self, engine: Blaeu, config: ServiceConfig) -> None:
        self._engine = engine
        self._config = config
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self.service: BlaeuService | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("service failed to start within 15s")
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._loop is not None and self._stop_event is not None
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=15)

    @property
    def port(self) -> int:
        assert self.service is not None
        return self.service.port

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.service = BlaeuService(self._engine, self._config)
        await self.service.start()
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        serve_task = asyncio.create_task(self.service.serve_forever())
        self._ready.set()
        await self._stop_event.wait()
        await self.service.stop()
        serve_task.cancel()


class Client:
    """A keep-alive HTTP client issuing protocol commands."""

    def __init__(self, port: int) -> None:
        self._conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        payload = json.dumps(body).encode() if body is not None else None
        self._conn.request(
            method,
            path,
            body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = self._conn.getresponse()
        return response.status, json.loads(response.read())

    def close(self) -> None:
        self._conn.close()


def _timed_open(client: Client, session_id: str, table: str) -> float:
    started = time.perf_counter()
    status, payload = client.request(
        "POST",
        "/api/open",
        {"session": session_id, "table": table, "theme": 0},
    )
    elapsed = time.perf_counter() - started
    assert status == 200, payload
    return elapsed


def _client_workload(
    port: int, client_index: int, table: str, n_rounds: int
) -> tuple[int, float]:
    """One simulated analyst: open, inspect, re-map; returns (requests, max_latency)."""
    client = Client(port)
    requests = 0
    slowest = 0.0
    try:
        for round_index in range(n_rounds):
            session = f"bench-c{client_index}-r{round_index}"
            for method, path, body in (
                ("POST", "/api/open", {"session": session, "table": table, "theme": 0}),
                ("POST", "/api/map", {"session": session}),
                ("POST", "/api/sql", {"session": session}),
                ("POST", "/api/history", {"session": session}),
                ("POST", "/api/close", {"session": session}),
            ):
                started = time.perf_counter()
                status, payload = client.request(method, path, body)
                slowest = max(slowest, time.perf_counter() - started)
                assert status == 200, (path, payload)
                requests += 1
    finally:
        client.close()
    return requests, slowest


def run_benchmark(smoke: bool) -> dict[str, object]:
    n_rows = 5_000 if smoke else 20_000
    n_clients = 8 if smoke else 32
    n_rounds = 2 if smoke else 3
    n_warm = 10 if smoke else 30

    engine_config = BlaeuConfig(map_k_values=(2, 3, 4), seed=7)
    engine = Blaeu(engine_config)
    engine.register(mixed_blobs(n_rows=n_rows, k=3, seed=11).table)
    table = engine.tables()[0]

    with ServiceThread(
        engine,
        ServiceConfig(port=0, workers=4, max_pending=n_clients * 4 + 8),
    ) as running:
        port = running.port
        client = Client(port)

        # Theme extraction is not what we measure; prime it.
        status, _ = client.request("POST", "/api/themes", {"table": table})
        assert status == 200

        # Cold: the very first map build, cache empty.
        cold_seconds = _timed_open(client, "bench-cold", table)

        # Warm: same action path, fresh sessions -> shared-cache hits.
        warm_samples = [
            _timed_open(client, f"bench-warm-{i}", table) for i in range(n_warm)
        ]
        warm_seconds = statistics.median(warm_samples)
        client.close()

        # Concurrency: n_clients hammer map endpoints while a probe
        # checks the event loop stays responsive via /healthz.
        probe_latencies: list[float] = []
        stop_probe = threading.Event()

        def probe() -> None:
            probe_client = Client(port)
            try:
                while not stop_probe.is_set():
                    started = time.perf_counter()
                    status, _ = probe_client.request("GET", "/healthz")
                    probe_latencies.append(time.perf_counter() - started)
                    assert status == 200
                    time.sleep(0.01)
            finally:
                probe_client.close()

        prober = threading.Thread(target=probe, daemon=True)
        results: list[tuple[int, float]] = []
        failures: list[str] = []

        def run_client(index: int) -> None:
            try:
                results.append(_client_workload(port, index, table, n_rounds))
            except Exception as error:  # noqa: BLE001 - reported below
                failures.append(f"client {index}: {error!r}")

        workers = [
            threading.Thread(target=run_client, args=(i,), daemon=True)
            for i in range(n_clients)
        ]
        prober.start()
        concurrent_started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        concurrent_seconds = time.perf_counter() - concurrent_started
        stop_probe.set()
        prober.join(timeout=10)

        assert not failures, f"client workloads failed: {failures[:5]}"
        assert len(results) == n_clients, (
            f"only {len(results)}/{n_clients} clients finished within the "
            "timeout"
        )
        total_requests = sum(count for count, _ in results)
        cache_stats = running.service.cache.stats()

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    record: dict[str, object] = {
        "benchmark": "service_throughput",
        "smoke": smoke,
        "n_rows": n_rows,
        "n_clients": n_clients,
        "cold_open_seconds": round(cold_seconds, 6),
        "warm_open_seconds_median": round(warm_seconds, 6),
        "warm_cold_speedup": round(speedup, 2),
        "concurrent_requests": total_requests,
        "concurrent_seconds": round(concurrent_seconds, 3),
        "throughput_rps": round(total_requests / concurrent_seconds, 1),
        "healthz_probe_max_seconds": round(max(probe_latencies), 6)
        if probe_latencies
        else None,
        "healthz_probe_median_seconds": round(
            statistics.median(probe_latencies), 6
        )
        if probe_latencies
        else None,
        "cache_hits": cache_stats.hits,
        "cache_misses": cache_stats.misses,
        "cache_hit_rate": round(cache_stats.hit_rate, 4),
    }
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload with relaxed thresholds (CI)",
    )
    args = parser.parse_args()

    record = run_benchmark(smoke=args.smoke)
    print("BENCH " + json.dumps(record, sort_keys=True))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "bench_service_throughput.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    min_speedup = 3.0 if args.smoke else 10.0
    speedup = float(record["warm_cold_speedup"])
    assert speedup >= min_speedup, (
        f"warm-cache speedup {speedup:.1f}x below the {min_speedup:.0f}x bar"
    )
    probe_max = record["healthz_probe_max_seconds"]
    assert probe_max is not None and float(probe_max) < 1.0, (
        f"event loop stalled: /healthz took {probe_max}s under load"
    )
    print(
        f"OK: {record['n_clients']} concurrent clients, "
        f"{record['throughput_rps']} req/s, warm cache {speedup:.0f}x "
        f"faster than cold, /healthz max {probe_max}s under load"
    )


if __name__ == "__main__":
    main()

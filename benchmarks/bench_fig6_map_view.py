"""Figure 6 — the map view: treemap geometry + region info panel.

The map view draws the region hierarchy with leaf area proportional to
tuple count, plus an information panel for the active region.  This bench
checks the geometry invariant that makes the visualization honest
(areas ∝ counts, children tile parents), and times layout + rendering +
the region-panel (highlight) query — the per-click costs of the UI.
"""

from __future__ import annotations

import pytest

from repro.core.config import BlaeuConfig
from repro.core.navigation import Explorer
from repro.datasets.hollywood import hollywood
from repro.viz.render import render_map, render_region_panel
from repro.viz.treemap import treemap_layout


@pytest.fixture(scope="module")
def session():
    explorer = Explorer(hollywood(), config=BlaeuConfig(map_k_values=(2, 3, 4)))
    data_map = explorer.open_columns(
        ("Budget", "WorldwideGross", "Profitability", "RottenTomatoes")
    )
    return explorer, data_map


def test_fig6_treemap_layout(benchmark, session, report):
    _, data_map = session
    rectangles = benchmark(lambda: treemap_layout(data_map, 960.0, 540.0))

    total_area = 960.0 * 540.0
    worst = 0.0
    for region in data_map.regions():
        expected = region.n_rows / data_map.n_rows * total_area
        got = rectangles[region.region_id].area
        worst = max(worst, abs(got - expected))
    assert worst < 1e-6  # area ∝ tuple count, exactly

    report(
        "fig6_treemap_layout",
        [
            "Figure 6 — treemap layout on a 960x540 canvas",
            f"regions: {len(rectangles)}; worst area error: {worst:.2e} px²",
            "leaf rectangles:",
        ]
        + [
            f"  [{leaf.region_id}] {leaf.label}: "
            f"{rectangles[leaf.region_id].width:.0f}x"
            f"{rectangles[leaf.region_id].height:.0f}"
            for leaf in data_map.leaves()
        ],
    )


def test_fig6_render_map_view(benchmark, session, report):
    _, data_map = session
    text = benchmark(lambda: render_map(data_map))
    assert "DATA MAP" in text
    report("fig6_map_view_render", ["Figure 6 — map view", "", text])


def test_fig6_region_panel(benchmark, session, report):
    explorer, data_map = session
    leaf = max(data_map.leaves(), key=lambda r: r.n_rows)

    highlight = benchmark(
        lambda: explorer.highlight(
            leaf.region_id, columns=("Title", "Genre", "Budget")
        )
    )
    panel = render_region_panel(highlight)
    assert f"REGION {leaf.region_id}" in panel
    report(
        "fig6_region_panel",
        ["Figure 6 — region info panel (left pane)", "", panel],
    )

"""Multi-worker serving benchmark — cold map-build throughput scaling.

Boots ``python -m repro serve`` twice over the same set of tables —
once single-process, once with ``--workers N`` (the pre-fork
supervisor) — and hammers the stateless ``/v1/tables/{table}/map``
resource with cold builds spread across many tables.  The consistent-
hash router pins each table's work to one worker, so a multi-table
workload is exactly the shape that scales with processes.

Recorded:

* ``single_worker_seconds`` / ``multi_worker_seconds`` — wall time of
  the identical cold batch (gated against the checked-in baseline:
  the multi-worker path must never regress the single-worker one),
* ``scaling_ratio`` — multi-worker speedup, recorded as an artifact
  (only asserted >= 2x on hosts with >= 4 CPUs; CI runners and this
  dev box are single-core, where process scaling is physically capped
  at 1x),
* bit-identity — every map payload must be byte-identical across
  worker counts (same seed, same content key → same map, no matter
  which process or cache tier built it).

Run directly (``--smoke`` shrinks the workload for CI)::

    PYTHONPATH=src python benchmarks/bench_multiworker_scaling.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
SRC = Path(__file__).resolve().parents[1] / "src"
ENV = {**os.environ, "PYTHONPATH": str(SRC)}


def _write_tables(directory: Path, n_tables: int, n_rows: int) -> list[str]:
    """Clusterable CSVs with distinct content (→ distinct fingerprints)."""
    import numpy as np

    directory.mkdir(parents=True, exist_ok=True)
    names = []
    for index in range(n_tables):
        rng = np.random.default_rng(100 + index)
        labels = rng.integers(0, 3, size=n_rows)
        columns = {
            "x": labels * 5.0 + rng.normal(0.0, 0.6, n_rows),
            "y": labels * -4.0 + rng.normal(0.0, 0.6, n_rows),
            "z": rng.normal(0.0, 1.0, n_rows),
        }
        path = directory / f"t{index}.csv"
        with path.open("w", encoding="utf-8") as handle:
            handle.write("x,y,z\n")
            for row in zip(*(v.tolist() for v in columns.values())):
                handle.write(",".join(repr(v) for v in row) + "\n")
        names.append(f"t{index}")
    return names


class Serve:
    """One ``python -m repro serve`` process (worker fleet or single)."""

    def __init__(self, argv: list[str]) -> None:
        self._process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", *argv],
            env=ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        assert self._process.stdout is not None
        banner = self._process.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        if not match:
            self._process.kill()
            raise RuntimeError(f"unexpected serve banner: {banner!r}")
        self.port = int(match.group(1))
        self._await_healthy()

    def _await_healthy(self, timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{self.port}/healthz", timeout=5
                ) as response:
                    if json.loads(response.read())["ok"]:
                        return
            except OSError:
                time.sleep(0.1)
        raise RuntimeError("serve never became healthy")

    def get(self, path: str, timeout: float = 300.0) -> dict:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{self.port}{path}", timeout=timeout
        ) as response:
            return json.loads(response.read())

    def close(self) -> None:
        self._process.terminate()
        try:
            self._process.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover
            self._process.kill()
            self._process.wait(timeout=15)


def _cold_batch(
    server: Serve, tables: list[str], k_values: tuple[int, ...], n_clients: int
) -> tuple[float, dict[str, dict]]:
    """Run every (table, k) cold build once, concurrently; time the batch."""
    jobs = [(table, k) for table in tables for k in k_values]
    maps: dict[str, dict] = {}
    failures: list[str] = []
    lock = threading.Lock()
    queue = list(jobs)

    def worker() -> None:
        while True:
            with lock:
                if not queue:
                    return
                table, k = queue.pop()
            try:
                payload = server.get(f"/v1/tables/{table}/map?k={k}")
                assert payload["ok"], payload
                with lock:
                    maps[f"{table}:k{k}"] = payload["map"]
            except Exception as error:  # noqa: BLE001 - reported below
                with lock:
                    failures.append(f"{table} k={k}: {error!r}")

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(min(n_clients, len(jobs)))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.perf_counter() - started
    assert not failures, f"cold builds failed: {failures[:5]}"
    assert len(maps) == len(jobs), "some cold builds never finished"
    return elapsed, maps


def run_benchmark(smoke: bool, n_workers: int) -> dict[str, object]:
    n_tables = 6 if smoke else 8
    n_rows = 1_500 if smoke else 4_000
    k_values = (2, 3)
    n_clients = 8

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        tables = _write_tables(directory / "data", n_tables, n_rows)
        csvs = [str(directory / "data" / f"{name}.csv") for name in tables]

        common = ["--port", "0", "--threads", "2", "--cache-size", "64"]

        # Single-process reference: its own (cold) disk tier.
        single = Serve(
            [*common, "--cache-dir", str(directory / "cache-single"), *csvs]
        )
        try:
            single_seconds, single_maps = _cold_batch(
                single, tables, k_values, n_clients
            )
        finally:
            single.close()

        # The supervisor fleet: same workload, its own cold disk tier.
        multi = Serve(
            [
                *common,
                "--workers",
                str(n_workers),
                "--cache-dir",
                str(directory / "cache-multi"),
                *csvs,
            ]
        )
        try:
            multi_seconds, multi_maps = _cold_batch(
                multi, tables, k_values, n_clients
            )
        finally:
            multi.close()

    if multi_maps != single_maps:
        differing = [
            key
            for key in single_maps
            if multi_maps.get(key) != single_maps[key]
        ]
        raise AssertionError(
            f"maps diverged across worker counts at the same seed: "
            f"{differing[:5]} — the determinism contract is broken"
        )

    n_builds = len(single_maps)
    ratio = single_seconds / multi_seconds
    return {
        "benchmark": "multiworker_scaling",
        "smoke": smoke,
        "n_workers": n_workers,
        "n_tables": n_tables,
        "n_rows": n_rows,
        "n_cold_builds": n_builds,
        "host_cpus": os.cpu_count() or 1,
        "single_worker_seconds": round(single_seconds, 4),
        "multi_worker_seconds": round(multi_seconds, 4),
        "single_worker_rps": round(n_builds / single_seconds, 2),
        "multi_worker_rps": round(n_builds / multi_seconds, 2),
        "scaling_ratio": round(ratio, 3),
        "maps_identical": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload with relaxed thresholds (CI)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes for the multi-worker run (default 4)",
    )
    args = parser.parse_args()

    record = run_benchmark(smoke=args.smoke, n_workers=args.workers)
    print("BENCH " + json.dumps(record, sort_keys=True))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "bench_multiworker_scaling.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    cpus = int(record["host_cpus"])
    ratio = float(record["scaling_ratio"])
    if cpus >= 4 and args.workers >= 4:
        assert ratio >= 2.0, (
            f"--workers {args.workers} is only {ratio:.2f}x the single-"
            f"worker throughput on a {cpus}-CPU host; the floor is 2x"
        )
        verdict = f"{ratio:.2f}x >= the 2x floor"
    else:
        # A single-core host caps process scaling at ~1x by physics;
        # the ratio is recorded, not gated.
        verdict = f"{ratio:.2f}x (ratio recorded; {cpus} CPU(s), no gate)"
    print(
        f"OK: {record['n_cold_builds']} cold builds, "
        f"{record['single_worker_rps']} rps single vs "
        f"{record['multi_worker_rps']} rps with {args.workers} workers — "
        f"{verdict}; maps bit-identical across worker counts"
    )


if __name__ == "__main__":
    main()

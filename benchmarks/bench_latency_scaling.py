"""§3 claim — sampling keeps latency interactive as tables grow.

"To keep the latency low, our system relies heavily on sampling.  After
each zoom, Blaeu only takes a few thousand samples from the database."
This bench measures map-building latency as the table grows from 2k to
100k rows, with the sampler on (2,000-tuple budget, the paper's operating
point) and off (cluster everything).  The shape to reproduce: sampled
latency is ~flat in table size, unsampled latency grows.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.mapping import build_map
from repro.datasets.lofar import lofar

COLUMNS = ("Flux150MHz", "SpectralIndex", "AngularSize", "Variability")
TABLE_SIZES = (2_000, 10_000, 50_000, 100_000)


@pytest.fixture(scope="module")
def tables():
    return {n: lofar(n_rows=n) for n in TABLE_SIZES}


def _build(table, sample_size: int):
    config = BlaeuConfig(map_sample_size=sample_size, map_k_values=(2, 3, 4))
    return build_map(
        table, COLUMNS, config=config, rng=np.random.default_rng(0), k=4
    )


@pytest.mark.parametrize("n_rows", TABLE_SIZES)
def test_map_latency_sampled(benchmark, tables, n_rows):
    data_map = benchmark.pedantic(
        lambda: _build(tables[n_rows], sample_size=2000),
        rounds=3,
        iterations=1,
    )
    assert data_map.n_rows == n_rows
    assert data_map.sample_size == min(2000, n_rows)


@pytest.mark.parametrize("n_rows", TABLE_SIZES[:3])
def test_map_latency_unsampled(benchmark, tables, n_rows):
    # Without sampling the clustering stage sees every tuple (CLARA at
    # scale); 100k unsampled is excluded to keep the suite bounded.
    data_map = benchmark.pedantic(
        lambda: _build(tables[n_rows], sample_size=n_rows),
        rounds=2,
        iterations=1,
    )
    assert data_map.sample_size == n_rows


def test_latency_scaling_curve(tables, benchmark, report):
    def measure(sample_size_for):
        out = {}
        for n, table in tables.items():
            started = time.perf_counter()
            _build(table, sample_size_for(n))
            out[n] = time.perf_counter() - started
        return out

    sampled = benchmark.pedantic(
        lambda: measure(lambda n: 2000), rounds=1, iterations=1
    )
    unsampled = measure(lambda n: n)

    rows = [
        "§3 latency claim — map latency vs table size (seconds)",
        "paper: sampling keeps the engine interactive on 100,000s of tuples",
        f"{'rows':>8}  {'sampled(2k)':>12}  {'no sampling':>12}",
    ]
    rows += [
        f"{n:>8}  {sampled[n]:>12.3f}  {unsampled[n]:>12.3f}"
        for n in TABLE_SIZES
    ]
    report("latency_scaling", rows)

    # Shape assertions: sampled latency grows far slower than table size;
    # at 100k rows the sampled path must win clearly.
    growth_sampled = sampled[100_000] / sampled[2_000]
    assert growth_sampled < 20, f"sampled latency grew {growth_sampled:.1f}x"
    assert unsampled[100_000] > 1.5 * sampled[100_000]

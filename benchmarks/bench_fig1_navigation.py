"""Figure 1 — the full navigation walkthrough on the countries table.

Regenerates each panel of the paper's Figure 1 on the OECD-shaped
dataset (6,823 × 378):

* **1a** — the theme list (labor, unemployment, health, … out of 378
  columns);
* **1b** — the initial labor-conditions map: a 3-region hierarchy split
  on *% employees working long hours ≈ 20* and *average income ≈ 22 k$*;
* **1c** — zoom into the short-hours/high-income region + highlight of
  the country names (Switzerland / Norway / Canada class);
* **1d** — projection of the selection onto the unemployment theme.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.core.mapping import build_map
from repro.datasets.oecd import (
    HIGH_INCOME_COUNTRIES,
    LABOR_THEME,
    UNEMPLOYMENT_THEME,
    oecd,
)
from repro.viz.render import render_map


@pytest.fixture(scope="module")
def engine():
    blaeu = Blaeu(BlaeuConfig())
    blaeu.register(oecd())
    return blaeu


def test_fig1a_theme_list(benchmark, engine, report):
    from repro.core.themes import extract_themes

    table = engine.database.table("countries")
    themes = benchmark.pedantic(
        lambda: extract_themes(
            table, config=engine.config, rng=np.random.default_rng(0)
        ),
        rounds=3,
        iterations=1,
    )

    labor = themes.theme_of(LABOR_THEME[0])
    unemployment = themes.theme_of(UNEMPLOYMENT_THEME[0])
    health = themes.theme_of("Life Expectancy")

    # Paper Fig 1a: distinct themes for labor conditions, unemployment
    # statistics and health indicators.
    assert LABOR_THEME[2] in labor.columns  # leisure travels with hours
    assert set(UNEMPLOYMENT_THEME) <= set(unemployment.columns)
    assert {"%People w/ Health Insurance", "Health Spending"} <= set(
        health.columns
    )
    assert labor.name != unemployment.name != health.name

    report(
        "fig1a_theme_list",
        [
            "Figure 1a — theme list (paper: unemployment / health / labor themes)",
            f"themes found: {len(themes)} over 377 non-key columns",
            f"labor theme        : {labor.columns}",
            f"unemployment theme : {unemployment.columns}",
            f"health theme       : {health.columns}",
            f"partition silhouette {themes.silhouette:.3f}",
        ],
    )


def test_fig1b_initial_map(benchmark, engine, report):
    table = engine.database.table("countries")

    # The paper's Fig 1b map has three regions; k=3 reproduces the figure
    # (silhouette-selected k on this data hovers between 2 and 3).
    data_map = benchmark(
        lambda: build_map(
            table, LABOR_THEME, config=engine.config,
            rng=np.random.default_rng(1), k=3,
        )
    )
    assert data_map.k == 3

    split_columns = {
        region.label.split(" <")[0].split(" >=")[0]
        for region in data_map.regions()
        if region.depth > 0
    }
    assert LABOR_THEME[0] in split_columns  # long working hours split
    assert LABOR_THEME[1] in split_columns  # average income split

    thresholds = {}
    for region in data_map.regions():
        if not region.is_leaf:
            for child in region.children:
                name, _, value = child.label.rpartition(" ")
                if name.endswith(("<", ">=")):
                    column = name.rsplit(" ", 1)[0]
                    thresholds[column] = float(value)
    hours_split = thresholds.get(LABOR_THEME[0])
    income_split = thresholds.get(LABOR_THEME[1])
    assert hours_split is not None and 15 <= hours_split <= 25  # paper: 20
    assert income_split is not None and 18 <= income_split <= 30  # paper: 22

    report(
        "fig1b_initial_map",
        [
            "Figure 1b — initial labor map (paper: splits at hours>=20, income>=22k)",
            f"measured splits: hours {hours_split:.1f} (paper 20), "
            f"income {income_split:.1f} (paper 22)",
            "",
            render_map(data_map),
        ],
    )


def test_fig1c_zoom_highlight(benchmark, engine, report):
    explorer = engine.explore("countries")
    data_map = explorer.open_columns(LABOR_THEME)

    # Find the short-hours region, zoom, then locate high income inside.
    short_hours = next(
        leaf for leaf in data_map.leaves()
        if leaf.exemplar[LABOR_THEME[0]] is not None
        and leaf.exemplar[LABOR_THEME[0]] < 20
    )
    zoomed = explorer.zoom(short_hours.region_id)
    rich = max(
        zoomed.leaves(),
        key=lambda r: r.exemplar.get(LABOR_THEME[1]) or float("-inf"),
    )
    highlight = benchmark(
        lambda: explorer.highlight(rich.region_id, columns=("CountryName",))
    )

    counts = highlight.category_counts["CountryName"]
    top8 = list(counts)[:8]
    overlap = len(set(top8) & HIGH_INCOME_COUNTRIES)
    # Paper Fig 1c: Switzerland, Norway, Canada "appear as countries with
    # high incomes and relatively low working hours".
    assert overlap >= 6, f"top countries {top8} are not the high-income group"

    report(
        "fig1c_zoom_highlight",
        [
            "Figure 1c — zoom into short-hours region, highlight CountryName",
            "paper: Switzerland, Norway, Canada surface in the high-income region",
            f"measured top 8: {top8}",
            f"high-income-group overlap: {overlap}/8",
        ],
    )


def test_fig1d_project(benchmark, engine, report):
    explorer = engine.explore("countries")
    data_map = explorer.open_columns(LABOR_THEME)
    short_hours = next(
        leaf for leaf in data_map.leaves()
        if leaf.exemplar[LABOR_THEME[0]] is not None
        and leaf.exemplar[LABOR_THEME[0]] < 20
    )
    explorer.zoom(short_hours.region_id)

    projected = benchmark(lambda: explorer.project_columns(UNEMPLOYMENT_THEME))

    # Paper Fig 1d: the projection reveals an unemployment split (< 8 / >= 8)
    # orthogonal to the labor-conditions view.
    split_columns = {
        region.label.split(" <")[0].split(" >=")[0]
        for region in projected.regions()
        if region.depth > 0
    }
    assert split_columns & set(UNEMPLOYMENT_THEME)
    unemployment_thresholds = [
        float(region.label.rpartition(" ")[2])
        for region in projected.regions()
        if region.depth > 0 and region.label.startswith("Unemployment <")
    ]
    assert unemployment_thresholds, "no unemployment split on the projection"
    assert 5 <= unemployment_thresholds[0] <= 14  # paper: 8

    report(
        "fig1d_project",
        [
            "Figure 1d — projection onto the unemployment theme",
            f"paper split: Unemployment >= 8; measured: "
            f"{unemployment_thresholds[0]:.2f}",
            "",
            render_map(projected),
            "",
            "implicit query: " + explorer.sql(),
        ],
    )

"""Figure 2 — the dependency graph over unemployment + health columns.

The paper's Figure 2 draws a weighted graph whose two visible communities
are the unemployment columns (Unemployment, Long Term Unemp., Female
Unemp.) and the health columns (Health Insurance, Life Expectancy, Health
Spendings).  This bench rebuilds exactly that graph, checks the two
communities are visible in the weights (intra ≫ inter), and times graph
construction — both for the 6 figure columns and for the full 375-column
table (the input to theme detection).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.oecd import HEALTH_THEME, UNEMPLOYMENT_THEME, oecd
from repro.graph.dependency import build_dependency_graph

FIGURE_COLUMNS = UNEMPLOYMENT_THEME + HEALTH_THEME


@pytest.fixture(scope="module")
def table():
    return oecd()


def test_fig2_six_column_graph(benchmark, table, report):
    graph = benchmark(
        lambda: build_dependency_graph(
            table,
            columns=FIGURE_COLUMNS,
            sample=1000,
            rng=np.random.default_rng(0),
        )
    )

    intra_pairs = []
    inter_pairs = []
    for i, a in enumerate(FIGURE_COLUMNS):
        for b in FIGURE_COLUMNS[i + 1 :]:
            same_group = (a in UNEMPLOYMENT_THEME) == (b in UNEMPLOYMENT_THEME)
            (intra_pairs if same_group else inter_pairs).append(
                graph.weight(a, b)
            )
    intra = float(np.mean(intra_pairs))
    inter = float(np.mean(inter_pairs))
    # Figure 2 shows two communities: within-community dependencies must
    # dominate the between-community ones.
    assert intra > 3 * inter, f"communities not separated: {intra} vs {inter}"

    lines = [
        "Figure 2 — dependency graph (paper: 2 communities, unemployment vs health)",
        f"mean intra-community weight: {intra:.3f}",
        f"mean inter-community weight: {inter:.3f}",
        f"separation ratio: {intra / max(inter, 1e-9):.1f}x",
        "",
        "edges (strongest first):",
    ]
    lines += [f"  {a} -- {b}: {w:.3f}" for a, b, w in graph.edges()[:10]]
    report("fig2_dependency_graph", lines)


def test_fig2_full_width_graph(benchmark, table, report):
    # The theme engine builds this graph over all non-key columns at
    # interaction time; this is the quadratic pairwise-MI workload.
    columns = tuple(
        name for name in table.column_names if name != "RegionName"
    )
    graph = benchmark.pedantic(
        lambda: build_dependency_graph(
            table, columns=columns, sample=1000,
            rng=np.random.default_rng(0),
        ),
        rounds=3,
        iterations=1,
    )
    assert graph.n_columns == len(columns)
    n_pairs = graph.n_columns * (graph.n_columns - 1) // 2
    report(
        "fig2_full_width_graph",
        [
            f"full dependency graph: {graph.n_columns} columns, "
            f"{n_pairs} MI estimates from a 1,000-row sample",
        ],
    )

"""Ablation — the design choices DESIGN.md calls out.

Two ablations of the mapping pipeline:

* **description stage**: the paper trades accuracy for interpretability
  by describing PAM clusters with a CART tree.  Sweep the leaf budget
  (``prune_leaf_factor``) and report fidelity vs region count — the
  curve that justifies the default (2 × k).
* **dependency discretization**: the MI dependency graph can bin numeric
  columns equal-frequency (default) or equal-width.  Compare theme
  recovery under both on skewed data — the reason equal-frequency is the
  default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.distance import pairwise_distances
from repro.cluster.pam import pam
from repro.core.preprocess import preprocess
from repro.datasets.lofar import lofar
from repro.datasets.synthetic import planted_themes
from repro.stats.discretize import discretize_column
from repro.stats.entropy import shannon_entropy
from repro.stats.mutual_info import MISSING_BIN, normalized_mutual_information
from repro.tree.cart import CartParams, fit_tree
from repro.tree.prune import prune_for_legibility

COLUMNS = ("Flux150MHz", "SpectralIndex", "AngularSize", "Variability")


@pytest.fixture(scope="module")
def clustered_sample():
    table = lofar(n_rows=6000).sample(1500, rng=np.random.default_rng(0))
    space = preprocess(table, columns=COLUMNS)
    clustering = pam(pairwise_distances(space.matrix), 4)
    return table, clustering


def test_ablation_leaf_budget(benchmark, clustered_sample, report):
    table, clustering = clustered_sample
    tree = fit_tree(
        table,
        clustering.labels,
        feature_names=COLUMNS,
        params=CartParams(max_depth=8, min_samples_leaf=2, min_samples_split=4),
    )

    def sweep():
        rows = []
        for factor in (1, 2, 3, 4):
            # min_accuracy=1.0 disables the opportunistic cleanup phase so
            # the sweep isolates the hard leaf cap.
            pruned = prune_for_legibility(
                tree, target_leaves=clustering.k * factor, min_accuracy=1.0
            )
            rows.append(
                (
                    factor,
                    pruned.n_leaves(),
                    pruned.accuracy(table, clustering.labels),
                )
            )
        rows.append((None, tree.n_leaves(), tree.accuracy(table, clustering.labels)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation — description-tree leaf budget vs fidelity (k=4, LOFAR)",
        f"{'leaf factor':>11} {'regions':>8} {'fidelity':>9}",
    ]
    for factor, leaves, fidelity in rows:
        label = "unpruned" if factor is None else str(factor)
        lines.append(f"{label:>11} {leaves:>8} {fidelity:>9.3f}")
    report("ablation_leaf_budget", lines)

    # Fidelity must be monotone non-decreasing in the leaf budget, and the
    # default budget (factor 2) should already capture most of it.
    fidelities = [fidelity for _, _, fidelity in rows]
    assert all(b >= a - 1e-9 for a, b in zip(fidelities, fidelities[1:]))
    assert fidelities[1] > 0.85


def test_ablation_discretization_scheme(benchmark, report):
    # Heavy-tailed latent groups: equal-width bins collapse most mass
    # into one bin and starve the MI estimate.
    planted = planted_themes(
        n_rows=800, group_sizes={"a": 3, "b": 3}, noise=0.4, seed=13
    )
    # Make the columns heavy-tailed by exponentiating.
    from repro.table.column import NumericColumn
    from repro.table.table import Table

    columns = [
        NumericColumn(c.name, np.exp(2.5 * c.values))
        for c in planted.table.numeric_columns()
    ]
    table = Table("skewed", columns)

    def mi(equal_frequency: bool) -> float:
        a = discretize_column(
            table.column("a_0"), equal_frequency=equal_frequency
        )
        b = discretize_column(
            table.column("a_1"), equal_frequency=equal_frequency
        )
        keep = (a != MISSING_BIN) & (b != MISSING_BIN)
        return normalized_mutual_information(a[keep], b[keep])

    results = benchmark.pedantic(
        lambda: {"equal_frequency": mi(True), "equal_width": mi(False)},
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_discretization",
        [
            "Ablation — MI discretization scheme on heavy-tailed columns",
            f"equal-frequency bins (default): NMI {results['equal_frequency']:.3f}",
            f"equal-width bins              : NMI {results['equal_width']:.3f}",
            "equal-frequency preserves the dependency signal under skew",
        ],
    )
    assert results["equal_frequency"] > results["equal_width"]


def test_ablation_entropy_floor(benchmark, clustered_sample, report):
    # Sanity ablation: discretized columns carry non-trivial entropy —
    # the MI estimates are not artifacts of degenerate binning.
    table, _ = clustered_sample

    def entropies():
        out = {}
        for name in COLUMNS:
            codes = discretize_column(table.column(name))
            out[name] = shannon_entropy(codes[codes != MISSING_BIN])
        return out

    values = benchmark(entropies)
    assert all(h > 1.0 for h in values.values())
    report(
        "ablation_entropy_floor",
        ["Ablation — per-column code entropies (nats)"]
        + [f"  {name}: {h:.2f}" for name, h in values.items()],
    )

"""Figure 4 — the four-tier architecture, end to end.

The paper's stack is *CSV/DB → MonetDB → R mapping engine → NodeJS
session manager → web client*.  This bench drives the in-repo equivalent
through the same tiers: CSV bytes → Database catalog → Blaeu engine →
SessionManager protocol → D3-ready JSON payload, and times (a) the cold
path (ingest + first map) and (b) the warm interaction path (zoom round
trips), the latency that matters during a demo.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.hollywood import hollywood
from repro.server.session import SessionManager
from repro.table.csv_io import read_csv_text, write_csv_text


@pytest.fixture(scope="module")
def csv_text():
    return write_csv_text(hollywood())


def test_fig4_cold_path_csv_to_first_map(benchmark, csv_text, report):
    def cold_path():
        engine = Blaeu(BlaeuConfig(map_k_values=(2, 3)))
        engine.register(read_csv_text(csv_text, name="hollywood"))
        manager = SessionManager(engine)
        response = manager.handle_json(
            json.dumps(
                {
                    "command": "open",
                    "session": "s",
                    "table": "hollywood",
                    "theme": 0,
                }
            )
        )
        return json.loads(response)

    response = benchmark.pedantic(cold_path, rounds=5, iterations=1)
    assert response["ok"]
    assert response["map"]["n_rows"] == 900

    report(
        "fig4_architecture_cold",
        [
            "Figure 4 — cold path: CSV -> catalog -> themes -> map -> JSON",
            "see timing table (includes theme extraction on first open)",
        ],
    )


def test_fig4_warm_interaction_round_trip(benchmark, csv_text, report):
    engine = Blaeu(BlaeuConfig(map_k_values=(2, 3)))
    engine.register(read_csv_text(csv_text, name="hollywood"))
    manager = SessionManager(engine)
    opened = json.loads(
        manager.handle_json(
            json.dumps(
                {
                    "command": "open",
                    "session": "s",
                    "table": "hollywood",
                    "theme": 0,
                }
            )
        )
    )
    target = max(
        opened["map"]["root"]["children"], key=lambda c: c["value"]
    )["id"]

    def round_trip():
        zoomed = manager.handle_json(
            json.dumps({"command": "zoom", "session": "s", "region": target})
        )
        manager.handle_json(
            json.dumps({"command": "rollback", "session": "s"})
        )
        return json.loads(zoomed)

    response = benchmark(round_trip)
    assert response["ok"]

    report(
        "fig4_architecture_warm",
        [
            "Figure 4 — warm path: one zoom round trip through the protocol",
            "paper claim: interaction-time latency; see timing table",
            f"zoom payload bytes: {len(json.dumps(response))}",
        ],
    )

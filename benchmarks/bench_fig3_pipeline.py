"""Figure 3 — the three-stage mapping pipeline.

The paper's Figure 3 shows *selection → preprocessing → clustering →
decision-tree inference*.  This bench times each stage separately on the
labor-conditions workload and measures the cost the paper acknowledges
for the final stage: "the decision tree only approximates the real
partitions detected during the clustering step" — reported here as tree
fidelity (agreement between tree and clustering on the sample).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.distance import pairwise_distances
from repro.cluster.pam import pam
from repro.core.config import BlaeuConfig
from repro.core.preprocess import preprocess
from repro.datasets.oecd import LABOR_THEME, oecd
from repro.tree.cart import fit_tree

CONFIG = BlaeuConfig()


@pytest.fixture(scope="module")
def sample():
    table = oecd()
    return table.sample(CONFIG.map_sample_size, rng=np.random.default_rng(0))


def test_fig3_stage1_preprocessing(benchmark, sample):
    space = benchmark(lambda: preprocess(sample, columns=LABOR_THEME))
    assert space.n_rows == CONFIG.map_sample_size
    assert not np.isnan(space.matrix).any()


def test_fig3_stage2_clustering(benchmark, sample):
    space = preprocess(sample, columns=LABOR_THEME)

    def cluster():
        distances = pairwise_distances(space.matrix[:1000])
        return pam(distances, 3)

    clustering = benchmark(cluster)
    assert clustering.k == 3


def test_fig3_stage3_tree_inference(benchmark, sample, report):
    space = preprocess(sample, columns=LABOR_THEME)
    distances = pairwise_distances(space.matrix[:1000])
    clustering = pam(distances, 3)
    head = sample.head(1000)

    tree = benchmark(
        lambda: fit_tree(
            head, clustering.labels,
            feature_names=LABOR_THEME, params=CONFIG.tree_params,
        )
    )
    fidelity = tree.accuracy(head, clustering.labels)
    # The paper accepts a small loss; the description should still track
    # the clustering closely on separable data.
    assert fidelity > 0.85

    report(
        "fig3_pipeline",
        [
            "Figure 3 — mapping pipeline stages on 2,000 sampled tuples (labor theme)",
            "stage 1 preprocessing / stage 2 PAM / stage 3 CART: see timing table",
            f"stage 3 approximation loss: fidelity {fidelity:.3f} "
            "(paper: 'the decision tree only approximates the real partitions')",
            f"tree: {tree.n_leaves()} leaves, depth {tree.depth()}",
        ],
    )

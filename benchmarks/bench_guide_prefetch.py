"""Guided-exploration benchmark — ranking latency + prefetch hit-rate lift.

Two questions from the guide PR:

* how fast is :func:`~repro.guide.recommend.suggest_actions` on an open
  exploration state (it runs inline in ``suggest`` commands and in the
  speculation planner, so it must stay well under a map build), and
* does speculative prefetch actually help?  A navigation trace is
  recorded by following the recommender's own top suggestions, then
  replayed twice against fresh engines: once bare, once with a
  :class:`~repro.guide.prefetch.PrefetchScheduler` warming the top
  suggestions between steps (the user's think time).  The prefetch-on
  replay must reach at least the prefetch-off map-cache hit rate, and
  its foreground step latency must stay within 10% of the bare replay
  (speculation must never get in the way; with a correct plan it makes
  the foreground *faster*).

Run it directly (``--smoke`` shrinks the workload for CI)::

    PYTHONPATH=src python benchmarks/bench_guide_prefetch.py

Results go to stdout as one ``BENCH {json}`` line and to
``benchmarks/results/bench_guide_prefetch.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import time
from pathlib import Path

from repro.core.config import BlaeuConfig
from repro.core.engine import Blaeu
from repro.datasets.synthetic import mixed_blobs
from repro.guide.prefetch import PrefetchScheduler, prefetch_actions
from repro.guide.recommend import suggest_actions
from repro.guide.trace import NavigationTrace, TraceRecorder, replay_trace
from repro.service.cache import LRUCache
from repro.service.pool import WorkerPool

RESULTS_DIR = Path(__file__).parent / "results"

#: Trace actions the recorder can replay (``recluster`` has no
#: navigation verb yet, so the recorded walk skips those suggestions).
_REPLAYABLE = ("open_theme", "zoom", "project")


def build_engine(n_rows: int) -> Blaeu:
    """A fresh engine + shared LRU result cache over the bench table."""
    engine = Blaeu(
        BlaeuConfig(map_k_values=(2, 3), seed=5), map_cache=LRUCache(256)
    )
    engine.register(mixed_blobs(n_rows=n_rows, k=3, seed=61).table)
    return engine


def record_trace(n_rows: int, n_steps: int) -> NavigationTrace:
    """Walk ``n_steps`` actions by always taking the top suggestion.

    The recorded stream is exactly the navigation the recommender
    steers towards — the realistic best case for speculation, and the
    honest one: prefetch warms what the guide recommends, and the
    simulated analyst follows the guide.
    """
    engine = build_engine(n_rows)
    explorer = engine.explore(engine.tables()[0])
    recorder = TraceRecorder()
    recorder.attach(explorer, "bench")
    for _ in range(n_steps):
        ranked = suggest_actions(explorer, limit=5)
        choice = next(
            (s for s in ranked if s.action in _REPLAYABLE), None
        )
        if choice is None:
            break
        if choice.action == "open_theme":
            explorer.open_theme(choice.target)
        elif choice.action == "zoom":
            explorer.zoom(choice.target)
        else:
            explorer.project(choice.target)
    return recorder.trace()


def _map_hits(engine: Blaeu) -> int:
    return int(engine.map_builder.stats()["map_cache_hits"])


def replay_bare(
    engine: Blaeu, trace: NavigationTrace
) -> tuple[list[float], float]:
    """Replay without speculation; per-step seconds and the hit rate.

    The hit rate counts only *foreground* steps served from the map
    cache (per-step hit deltas) — with a prefetcher running, the
    speculative builds' own misses must not dilute the number that
    matters: how often the user's click was already warm.
    """
    explorer = engine.explore(engine.tables()[0])
    timings: list[float] = []
    warm_steps = 0
    for step in trace:
        single = NavigationTrace(steps=(step,))
        before = _map_hits(engine)
        started = time.perf_counter()
        replay_trace(explorer, single)
        timings.append(time.perf_counter() - started)
        if _map_hits(engine) > before:
            warm_steps += 1
    return timings, warm_steps / len(trace)


def replay_prefetching(
    engine: Blaeu, trace: NavigationTrace, top_n: int
) -> tuple[list[float], float, dict[str, int]]:
    """Replay with a speculating scheduler filling the think time.

    After each foreground step the scheduler plans and warms the top
    suggestions, and the replay waits for it to drain — the moment the
    analyst spends reading the map before the next click.
    """

    async def run() -> tuple[list[float], float, dict[str, int]]:
        pool = WorkerPool(workers=2, max_pending=8)
        scheduler = PrefetchScheduler(pool, top_n=top_n, jobs=1)
        explorer = engine.explore(engine.tables()[0])
        timings: list[float] = []
        warm_steps = 0
        try:
            for step in trace:
                single = NavigationTrace(steps=(step,))
                before = _map_hits(engine)
                started = time.perf_counter()
                replay_trace(explorer, single)
                timings.append(time.perf_counter() - started)
                if _map_hits(engine) > before:
                    warm_steps += 1
                scheduler.speculate(
                    "bench",
                    lambda: prefetch_actions(
                        explorer, suggest_actions(explorer, limit=top_n)
                    ),
                )
                await scheduler.drain()  # think time
            stats = scheduler.stats()
        finally:
            await scheduler.aclose()
            pool.shutdown()
        return timings, warm_steps / len(trace), stats

    return asyncio.run(run())


def time_suggest(engine: Blaeu, repeats: int) -> float:
    """Best-of-N seconds to rank suggestions on an open state."""
    explorer = engine.explore(engine.tables()[0])
    explorer.open_theme(0)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        suggestions = suggest_actions(explorer, limit=5)
        best = min(best, time.perf_counter() - started)
        assert suggestions, "an open state must always have suggestions"
    return best


def run_benchmark(smoke: bool) -> dict[str, object]:
    n_rows = 3_000 if smoke else 12_000
    n_steps = 4 if smoke else 6
    repeats = 5 if smoke else 15
    top_n = 3

    trace = record_trace(n_rows, n_steps)
    assert len(trace) >= 2, "the recorded walk stalled immediately"

    off_timings, off_rate = replay_bare(build_engine(n_rows), trace)
    on_timings, on_rate, prefetch_stats = replay_prefetching(
        build_engine(n_rows), trace, top_n
    )

    # The cold first step is identical in both runs; the lift lives in
    # the follow-up steps the scheduler had time to warm.
    p50_off = statistics.median(off_timings[1:])
    p50_on = statistics.median(on_timings[1:])
    p50_ratio = p50_on / p50_off if p50_off else 1.0

    suggest_seconds = time_suggest(build_engine(n_rows), repeats)

    record: dict[str, object] = {
        "benchmark": "guide_prefetch",
        "smoke": smoke,
        "n_rows": n_rows,
        "n_steps": len(trace),
        "top_n": top_n,
        "suggest_seconds": round(suggest_seconds, 6),
        "hit_rate_off": round(off_rate, 4),
        "hit_rate_on": round(on_rate, 4),
        "hit_rate_lift": round(on_rate - off_rate, 4),
        "replay_off_p50_seconds": round(p50_off, 6),
        "replay_on_p50_seconds": round(p50_on, 6),
        "foreground_p50_ratio": round(p50_ratio, 4),
        "prefetch_completed": prefetch_stats["completed"],
        "prefetch_cancelled": prefetch_stats["cancelled"],
        "prefetch_errors": prefetch_stats["errors"],
    }

    assert on_rate >= off_rate, (
        f"prefetch-on hit rate {on_rate:.2%} fell below the prefetch-off "
        f"baseline {off_rate:.2%}"
    )
    assert p50_ratio <= 1.10, (
        f"speculation slowed the foreground: p50 ratio {p50_ratio:.2f} "
        "exceeds the 1.10 bar"
    )
    assert prefetch_stats["errors"] == 0, prefetch_stats
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload with relaxed thresholds (CI)",
    )
    args = parser.parse_args()

    record = run_benchmark(smoke=args.smoke)
    print("BENCH " + json.dumps(record, sort_keys=True))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "bench_guide_prefetch.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    print(
        f"OK: hit rate {record['hit_rate_off']:.0%} -> "
        f"{record['hit_rate_on']:.0%} with prefetch, foreground p50 ratio "
        f"{record['foreground_p50_ratio']}, suggest in "
        f"{record['suggest_seconds']}s"
    )


if __name__ == "__main__":
    main()

"""Partitioned-store benchmark — zone-map pruning and parallel scans.

The interactivity claim behind the partitioned store: a selective
predicate over a 100M-row table should touch only the partitions whose
zone maps admit it, and the partitions it does touch should scan on
every core.  This bench builds a synthetic store slab by slab (peak
memory stays bounded whatever the row count), then measures:

* ``pruned_scan_seconds`` vs ``unpruned_scan_seconds`` — the same
  selective predicate with and without zone maps; the pruned scan must
  skip >= 50% of the partitions and return a bit-identical mask,
* ``serial_scan_seconds`` vs ``parallel_scan_seconds`` — a
  non-prunable predicate at ``scan_jobs=1`` vs ``scan_jobs=4``; the
  >= 2x speedup floor is asserted only on hosts with >= 4 CPUs (CI
  runners and this dev box are single-core, where process scaling is
  physically capped at 1x), with bit-identity asserted everywhere,
* ``append_seconds`` — appending 2.5% more rows must cost a small
  fraction of the initial build (incremental ingest never rewrites
  existing data).

Row count defaults to 10M (2M with ``--smoke`` — big enough that the
gated serial scan clears the regression checker's noise floor); set
``BLAEU_PARTITION_BENCH_ROWS=100000000`` for the full-scale run
(needs ~3 GB of disk and a few GB of RAM for the priority permutation).

Run directly (``--smoke`` shrinks the workload for CI)::

    PYTHONPATH=src python benchmarks/bench_partition_scan.py --smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import io
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"

SLAB_ROWS = 1 << 20
N_PARTITIONS = 16
CATEGORIES = ("n", "e", "s", "w")


def _build_store(root: Path, n_rows: int, chunk_rows: int) -> None:
    """Write a store slab by slab: x ascending (prunable), y uniform
    (not prunable), cat cyclic.  Bounded memory at any ``n_rows``."""
    from repro.store.format import (
        CODES_DTYPE,
        KIND_CATEGORICAL,
        KIND_NUMERIC,
        MASK_DTYPE,
        VALUES_DTYPE,
        ColumnMeta,
        StoreManifest,
        StreamingFingerprint,
        write_priorities,
    )
    from repro.store.partitions import build_partitions

    root.mkdir(parents=True)
    columns_dir = root / "columns"
    columns_dir.mkdir()
    metas = (
        ColumnMeta(
            "x",
            KIND_NUMERIC,
            {"values": "columns/c00000.values.bin", "mask": "columns/c00000.mask.bin"},
        ),
        ColumnMeta(
            "y",
            KIND_NUMERIC,
            {"values": "columns/c00001.values.bin", "mask": "columns/c00001.mask.bin"},
        ),
        ColumnMeta(
            "cat",
            KIND_CATEGORICAL,
            {
                "codes": "columns/c00002.codes.bin",
                "mask": "columns/c00002.mask.bin",
                "categories": "columns/c00002.categories.json",
            },
        ),
    )
    rng = np.random.default_rng(23)
    handles = {
        name: (root / meta.files[role]).open("wb")
        for meta in metas
        for role, name in (
            [("values", f"{meta.name}.data")]
            if meta.kind == KIND_NUMERIC
            else [("codes", f"{meta.name}.data")]
        )
        + [("mask", f"{meta.name}.mask")]
    }
    try:
        no_missing = np.zeros(SLAB_ROWS, dtype=MASK_DTYPE)
        for lo in range(0, n_rows, SLAB_ROWS):
            hi = min(lo + SLAB_ROWS, n_rows)
            count = hi - lo
            x = np.arange(lo, hi, dtype=VALUES_DTYPE)
            y = rng.uniform(0.0, 1.0, count).astype(VALUES_DTYPE)
            codes = (np.arange(lo, hi) % len(CATEGORIES)).astype(CODES_DTYPE)
            mask = no_missing[:count]
            handles["x.data"].write(x.tobytes())
            handles["x.mask"].write(mask.tobytes())
            handles["y.data"].write(y.tobytes())
            handles["y.mask"].write(mask.tobytes())
            handles["cat.data"].write(codes.tobytes())
            handles["cat.mask"].write(mask.tobytes())
    finally:
        for handle in handles.values():
            handle.close()
    (root / metas[2].files["categories"]).write_text(json.dumps(list(CATEGORIES)))
    write_priorities(root, n_rows, 0)
    fingerprint = StreamingFingerprint(n_rows, chunk_rows)
    fingerprint.add_numeric(
        "x", root / metas[0].files["values"], root / metas[0].files["mask"]
    )
    fingerprint.add_numeric(
        "y", root / metas[1].files["values"], root / metas[1].files["mask"]
    )
    fingerprint.add_categorical(
        "cat",
        root / metas[2].files["codes"],
        root / metas[2].files["mask"],
        CATEGORIES,
    )
    partition_rows = -(-n_rows // N_PARTITIONS)
    partitions = build_partitions(
        root, metas, n_rows, chunk_rows, partition_rows
    )
    StoreManifest(
        table="bench",
        n_rows=n_rows,
        chunk_rows=chunk_rows,
        fingerprint=fingerprint.hexdigest(),
        columns=metas,
        priority_seed=0,
        partitions=partitions,
    ).save(root)


def _append_csv_text(start: int, count: int) -> io.StringIO:
    lines = ["x,y,cat"]
    rng = np.random.default_rng(99)
    ys = rng.uniform(0.0, 1.0, count)
    for offset in range(count):
        i = start + offset
        lines.append(f"{float(i)},{ys[offset]!r},{CATEGORIES[i % 4]}")
    return io.StringIO("\n".join(lines))


def run_benchmark(smoke: bool) -> dict[str, object]:
    from repro.store.format import StoreManifest
    from repro.store.ingest import append_csv
    from repro.store.stored import StoredTable
    from repro.table.predicates import Comparison

    env_rows = int(os.environ.get("BLAEU_PARTITION_BENCH_ROWS", "0") or 0)
    n_rows = env_rows or (2_000_000 if smoke else 10_000_000)
    chunk_rows = 65_536

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "store"
        started = time.perf_counter()
        _build_store(root, n_rows, chunk_rows)
        build_seconds = time.perf_counter() - started
        manifest = StoreManifest.load(root)
        n_partitions = len(manifest.partitions)

        selective = Comparison("x", ">=", float(n_rows) * 0.95)
        broad = Comparison("y", ">", 0.5)

        pruned_table = StoredTable(root, scan_jobs=None)
        started = time.perf_counter()
        pruned_mask = pruned_table.scan_mask(selective)
        pruned_seconds = time.perf_counter() - started
        skipped = pruned_table.partitions_skipped
        prune_fraction = skipped / n_partitions

        # The same scan against a zone-less view of the same files — the
        # pre-partitioning cost, and the bit-identity reference.
        unpruned_table = StoredTable(
            root,
            manifest=dataclasses.replace(manifest, partitions=()),
            scan_jobs=None,
        )
        started = time.perf_counter()
        unpruned_mask = unpruned_table.scan_mask(selective)
        unpruned_seconds = time.perf_counter() - started
        pruning_identical = bool(np.array_equal(pruned_mask, unpruned_mask))
        assert pruning_identical, "zone-map pruning changed the scan result"
        assert prune_fraction >= 0.5, (
            f"selective predicate pruned only {skipped}/{n_partitions} "
            f"partitions; the floor is 50%"
        )

        started = time.perf_counter()
        serial_mask = StoredTable(root, scan_jobs=None).scan_mask(broad)
        serial_seconds = time.perf_counter() - started
        started = time.perf_counter()
        parallel_mask = StoredTable(root, scan_jobs=4).scan_mask(broad)
        parallel_seconds = time.perf_counter() - started
        parallel_identical = bool(np.array_equal(serial_mask, parallel_mask))
        assert parallel_identical, "scan_jobs=4 changed the scan result"
        speedup = serial_seconds / parallel_seconds

        appended = max(n_rows // 40, 1_000)
        started = time.perf_counter()
        grown = append_csv(
            _append_csv_text(n_rows, appended), root, chunk_rows=chunk_rows
        )
        append_seconds = time.perf_counter() - started
        assert grown.n_rows == n_rows + appended
        assert StoreManifest.load(root).version == manifest.version + 1

    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"scan_jobs=4 is only {speedup:.2f}x serial on a {cpus}-CPU "
            f"host; the floor is 2x"
        )
    return {
        "benchmark": "partition_scan",
        "smoke": smoke,
        "n_rows": n_rows,
        "n_partitions": n_partitions,
        "chunk_rows": chunk_rows,
        "appended_rows": appended,
        "host_cpus": cpus,
        "build_seconds": round(build_seconds, 4),
        "pruned_scan_seconds": round(pruned_seconds, 4),
        "unpruned_scan_seconds": round(unpruned_seconds, 4),
        "partitions_skipped": skipped,
        "prune_fraction": round(prune_fraction, 4),
        "serial_scan_seconds": round(serial_seconds, 4),
        "parallel_scan_seconds": round(parallel_seconds, 4),
        "parallel_speedup": round(speedup, 3),
        "append_seconds": round(append_seconds, 4),
        "pruning_identical": pruning_identical,
        "parallel_identical": parallel_identical,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload with relaxed thresholds (CI)",
    )
    args = parser.parse_args()

    record = run_benchmark(smoke=args.smoke)
    print("BENCH " + json.dumps(record, sort_keys=True))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "bench_partition_scan.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    ratio = float(record["parallel_speedup"])
    cpus = int(record["host_cpus"])
    verdict = (
        f"{ratio:.2f}x >= the 2x floor"
        if cpus >= 4
        else f"{ratio:.2f}x (floor not asserted on {cpus} CPUs)"
    )
    print(
        f"pruned {record['partitions_skipped']}/{record['n_partitions']} "
        f"partitions ({float(record['prune_fraction']):.0%}); "
        f"scan_jobs=4 speedup {verdict}; bit-identical everywhere"
    )


if __name__ == "__main__":
    main()

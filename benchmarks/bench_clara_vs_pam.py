"""§3 claim — "when the data is too large, Blaeu creates the maps with
CLARA, a sampling-based variant of the PAM algorithm".

CLARA's value proposition: near-PAM clustering cost at a fraction of the
runtime, with runtime that scales ~linearly in n instead of PAM's
quadratic memory/time.  This bench sweeps n and reports both algorithms'
wall time and CLARA's cost penalty (CLARA cost / PAM cost, ≥ 1 by
definition of the PAM optimum being stronger).  k-means joins as the
speed baseline the paper's authors considered.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster.clara import clara
from repro.cluster.distance import pairwise_distances
from repro.cluster.kmeans import kmeans
from repro.cluster.pam import pam
from repro.datasets.synthetic import numeric_blobs

K = 4
SIZES = (500, 1000, 2000, 4000)


@pytest.fixture(scope="module")
def datasets():
    return {
        n: numeric_blobs(n_rows=n, k=K, n_features=6, spread=0.8, seed=n)
        for n in SIZES
    }


@pytest.mark.parametrize("n", SIZES)
def test_clara_runtime(benchmark, datasets, n):
    points = datasets[n].table.numeric_columns()
    matrix = np.column_stack([c.values for c in points])
    result = benchmark.pedantic(
        lambda: clara(matrix, K, rng=np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )
    assert result.k == K


@pytest.mark.parametrize("n", SIZES[:3])
def test_pam_runtime(benchmark, datasets, n):
    points = datasets[n].table.numeric_columns()
    matrix = np.column_stack([c.values for c in points])
    result = benchmark.pedantic(
        lambda: pam(pairwise_distances(matrix), K),
        rounds=3,
        iterations=1,
    )
    assert result.k == K


def test_clara_vs_pam_quality_and_speed(benchmark, datasets, report):
    def sweep():
        rows = []
        for n in SIZES:
            blobs = datasets[n]
            matrix = np.column_stack(
                [c.values for c in blobs.table.numeric_columns()]
            )
            started = time.perf_counter()
            exact = pam(pairwise_distances(matrix), K)
            pam_time = time.perf_counter() - started

            started = time.perf_counter()
            approx = clara(matrix, K, rng=np.random.default_rng(0))
            clara_time = time.perf_counter() - started

            started = time.perf_counter()
            lloyd = kmeans(matrix, K, rng=np.random.default_rng(0))
            kmeans_time = time.perf_counter() - started

            rows.append(
                (
                    n,
                    pam_time,
                    clara_time,
                    kmeans_time,
                    approx.cost / exact.cost,
                    lloyd.cost / exact.cost,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "§3 CLARA claim — PAM vs CLARA vs k-means (k=4, 6-d blobs)",
        f"{'n':>6} {'PAM s':>8} {'CLARA s':>8} {'kmeans s':>9} "
        f"{'CLARA/PAM cost':>15} {'kmeans/PAM cost':>16}",
    ]
    for n, pam_t, clara_t, kmeans_t, cost_ratio, kmeans_ratio in rows:
        lines.append(
            f"{n:>6} {pam_t:>8.3f} {clara_t:>8.3f} {kmeans_t:>9.3f} "
            f"{cost_ratio:>15.3f} {kmeans_ratio:>16.3f}"
        )
    report("clara_vs_pam", lines)

    # Shape: at the largest size CLARA is clearly faster than PAM while
    # paying only a small cost penalty.
    largest = rows[-1]
    assert largest[2] < largest[1] / 2, "CLARA not faster than PAM at 4k"
    assert largest[4] < 1.25, f"CLARA cost penalty {largest[4]:.3f} too high"
    # Speedup grows with n (the asymptotic claim).
    speedups = [r[1] / r[2] for r in rows]
    assert speedups[-1] > speedups[0]

"""§3 claim — the silhouette picks the "right" number of clusters.

"We generate several partitionings with different numbers of clusters,
and keep the one with the best score."  This bench plants k ∈ {2..6}
blob structures and measures how often the silhouette-driven selection
recovers the planted k, across seeds — the success metric of the paper's
model-selection procedure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.distance import euclidean_distances
from repro.cluster.kselect import select_k

PLANTED_KS = (2, 3, 4, 5, 6)
SEEDS = tuple(range(5))


def _planted(true_k: int, seed: int):
    """Blobs on a ring: guaranteed pairwise-separated planted clusters.

    Random-box centers can overlap at larger k, making the planted k
    unrecoverable *in principle*; the claim under test is the selector,
    not the generator, so separation is enforced.
    """
    rng = np.random.default_rng(1000 * true_k + seed)
    angles = np.linspace(0.0, 2.0 * np.pi, true_k, endpoint=False)
    centers = 8.0 * np.column_stack(
        [np.cos(angles), np.sin(angles), np.zeros(true_k)]
    )
    labels = rng.integers(0, true_k, 240)
    points = centers[labels] + rng.normal(0.0, 0.5, (240, 3))
    return points


@pytest.mark.parametrize("true_k", PLANTED_KS)
def test_planted_workload_is_separable(benchmark, true_k):
    points = _planted(true_k, seed=0)
    distances = benchmark(lambda: euclidean_distances(points))
    assert distances.shape == (240, 240)


@pytest.mark.parametrize("true_k", PLANTED_KS)
def test_kselect_runtime(benchmark, true_k):
    points = _planted(true_k, seed=0)
    distances = euclidean_distances(points)
    selection = benchmark(
        lambda: select_k(distances, k_values=(2, 3, 4, 5, 6, 7))
    )
    assert selection.k >= 2


def test_kselect_recovery_rate(benchmark, report):
    def sweep():
        hits: dict[int, int] = {}
        for true_k in PLANTED_KS:
            hits[true_k] = 0
            for seed in SEEDS:
                points = _planted(true_k, seed)
                selection = select_k(
                    euclidean_distances(points), k_values=(2, 3, 4, 5, 6, 7)
                )
                if selection.k == true_k:
                    hits[true_k] += 1
        return hits

    hits = benchmark.pedantic(sweep, rounds=1, iterations=1)
    total = sum(hits.values())
    lines = [
        "§3 k-selection claim — silhouette recovery of planted k "
        f"({len(SEEDS)} seeds each)",
        f"{'planted k':>9} {'recovered':>10}",
    ]
    lines += [
        f"{k:>9} {hits[k]:>6}/{len(SEEDS)}" for k in PLANTED_KS
    ]
    lines.append(
        f"overall: {total}/{len(PLANTED_KS) * len(SEEDS)} "
        f"({total / (len(PLANTED_KS) * len(SEEDS)):.0%})"
    )
    report("kselect_recovery", lines)
    # Well-separated blobs: recovery should be near-perfect.
    assert total >= 0.8 * len(PLANTED_KS) * len(SEEDS)

"""Figure 5 — the theme view: quality of the theme partition.

The theme view is only useful if the themes are right.  This bench scores
theme recovery against the generator's planted column groups (36 filler
groups + labor + unemployment + health on the full 378-column table) with
NMI over column labels, compares the paper's method (PAM on the
dependency graph) against the two baselines, and times the rendering of
the view itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.validation import clustering_nmi
from repro.core.config import BlaeuConfig
from repro.core.themes import extract_themes
from repro.datasets.oecd import (
    HEALTH_THEME,
    LABOR_THEME,
    UNEMPLOYMENT_THEME,
    oecd,
)
from repro.graph.dependency import build_dependency_graph
from repro.graph.partition import (
    modularity_partition,
    pam_partition,
    threshold_components,
)
from repro.viz.render import render_theme_view

#: The planted truth: every column that belongs to a known group.
def _planted_groups(table) -> dict[str, int]:
    groups: dict[str, int] = {}
    next_id = 0

    def group_of(name: str) -> str | None:
        if name in LABOR_THEME:
            return "labor"
        if name in UNEMPLOYMENT_THEME:
            return "unemployment"
        if name in HEALTH_THEME:
            return "health"
        if " Indicator " in name:
            return name.rsplit(" Indicator ", 1)[0]
        return None

    ids: dict[str, int] = {}
    for name in table.column_names:
        group = group_of(name)
        if group is None:
            continue
        if group not in ids:
            ids[group] = next_id
            next_id += 1
        groups[name] = ids[group]
    return groups


def _score(partition: list[list[str]], truth: dict[str, int]) -> float:
    predicted = []
    expected = []
    index = {
        column: g for g, group in enumerate(partition) for column in group
    }
    for column, planted in truth.items():
        if column in index:
            predicted.append(index[column])
            expected.append(planted)
    return clustering_nmi(np.asarray(predicted), np.asarray(expected))


@pytest.fixture(scope="module")
def table():
    return oecd()


@pytest.fixture(scope="module")
def graph(table):
    columns = tuple(
        c for c in table.column_names
        if c not in ("RegionName", "CountryName")
    )
    return build_dependency_graph(
        table, columns=columns, sample=1000, rng=np.random.default_rng(0)
    )


def test_fig5_theme_recovery_pam(benchmark, table, graph, report):
    truth = _planted_groups(table)
    groups, selection = benchmark.pedantic(
        lambda: pam_partition(graph, k_values=(30, 40, 45, 50)),
        rounds=3,
        iterations=1,
    )
    nmi = _score(groups, truth)
    assert nmi > 0.9, f"theme recovery NMI {nmi}"

    threshold_groups = threshold_components(graph, min_weight=0.3)
    modularity_groups = modularity_partition(graph)
    rows = [
        "Figure 5 — theme view: recovery of 39 planted column groups (NMI)",
        f"PAM on dependency graph (paper's method): {nmi:.3f} "
        f"(k={selection.k})",
        f"threshold components baseline          : "
        f"{_score(threshold_groups, truth):.3f} "
        f"({len(threshold_groups)} groups)",
        f"greedy modularity baseline             : "
        f"{_score(modularity_groups, truth):.3f} "
        f"({len(modularity_groups)} groups)",
    ]
    report("fig5_theme_recovery", rows)


def test_fig5_render_theme_view(benchmark, table, report):
    themes = extract_themes(
        table, config=BlaeuConfig(), rng=np.random.default_rng(0)
    )
    text = benchmark(lambda: render_theme_view(themes, max_columns=4))
    assert "THEMES" in text
    report(
        "fig5_theme_view_render",
        ["Figure 5 — theme view rendering", "", text[:2000]],
    )

"""§2 claim — maps quantize the query space into Select-Project queries.

"With Blaeu, our users implicitly formulate and refine Select-Project
queries … Blaeu quantizes the query space: to refine their queries, the
users need only to consider a few discrete alternatives."

This bench (a) verifies the semantics — every one-click query's SQL
predicate selects exactly the tuples its region reports, across a whole
navigation session — and (b) measures the *quantization factor*: how few
discrete alternatives stand in for the continuous space of range queries.
"""

from __future__ import annotations

import pytest

from repro.core.config import BlaeuConfig
from repro.core.navigation import Explorer
from repro.core.queries import quantized_queries
from repro.datasets.hollywood import hollywood


@pytest.fixture(scope="module")
def session():
    explorer = Explorer(
        hollywood(), config=BlaeuConfig(map_k_values=(2, 3, 4))
    )
    explorer.open_columns(
        ("Budget", "WorldwideGross", "Profitability", "RottenTomatoes")
    )
    return explorer


def test_quantized_query_equivalence(benchmark, session, report):
    explorer = session
    table = explorer.table

    def verify_all():
        state = explorer.state
        queries = quantized_queries(table, state.map, state.selection)
        for query in queries:
            assert table.select(query.predicate).n_rows == query.n_rows
        return queries

    queries = benchmark(verify_all)
    report(
        "expressivity_equivalence",
        [
            "§2 expressivity — quantized queries vs direct evaluation",
            f"{len(queries)} one-click queries; all counts match exactly",
            "example queries:",
        ]
        + [f"  [{q.region_id}] {q.sql}" for q in queries[:5]],
    )


def test_navigation_session_stays_consistent(benchmark, session, report):
    explorer = session

    def navigate_and_verify():
        data_map = explorer.state.map
        target = max(data_map.leaves(), key=lambda r: r.n_rows)
        zoomed = explorer.zoom(target.region_id)
        # The zoomed selection must equal the region the user clicked.
        sql_rows = explorer.table.select(explorer.state.selection).n_rows
        assert sql_rows == zoomed.n_rows == target.n_rows
        explorer.rollback()
        return target.n_rows

    n_rows = benchmark(navigate_and_verify)
    report(
        "expressivity_navigation",
        [
            "§2 expressivity — zoom==Select equivalence over a session",
            f"clicked region of {n_rows} tuples; selection, map and SQL agree",
        ],
    )


def test_quantization_factor(benchmark, session, report):
    explorer = session
    table = explorer.table

    def count_alternatives():
        state = explorer.state
        return len(quantized_queries(table, state.map, state.selection))

    alternatives = benchmark(count_alternatives)
    # The point of the claim: a handful of discrete choices, not a
    # continuous space.
    assert alternatives <= 2 * 4 * 2 + 1  # ≤ 2k regions per level + root
    report(
        "expressivity_quantization",
        [
            "§2 expressivity — quantization of the query space",
            f"continuous Select-Project space reduced to {alternatives} "
            "clickable queries on this map",
        ],
    )
